#include "sched/policy.hpp"

#include "common/assert.hpp"

namespace appclass::sched {

const WeightedSchedule& pick_class_aware(
    const std::vector<WeightedSchedule>& schedules,
    const std::map<char, core::ApplicationClass>& classes) {
  APPCLASS_EXPECTS(!schedules.empty());
  const WeightedSchedule* best = &schedules.front();
  int best_score = diversity_score(best->schedule, classes);
  for (const auto& ws : schedules) {
    const int score = diversity_score(ws.schedule, classes);
    if (score > best_score ||
        (score == best_score &&
         to_string(ws.schedule) < to_string(best->schedule))) {
      best = &ws;
      best_score = score;
    }
  }
  return *best;
}

std::optional<std::map<char, core::ApplicationClass>> classes_from_database(
    const core::ApplicationDatabase& db,
    const std::map<char, std::string>& code_to_app,
    const std::string& config) {
  std::map<char, core::ApplicationClass> out;
  for (const auto& [code, app] : code_to_app) {
    const auto cls = db.typical_class(app, config);
    if (!cls) return std::nullopt;
    out[code] = *cls;
  }
  return out;
}

const WeightedSchedule& pick_random(
    const std::vector<WeightedSchedule>& schedules, linalg::Rng& rng) {
  APPCLASS_EXPECTS(!schedules.empty());
  std::uint64_t total = 0;
  for (const auto& ws : schedules) total += ws.multiplicity;
  APPCLASS_EXPECTS(total > 0);
  std::uint64_t x = rng.uniform_index(total);
  for (const auto& ws : schedules) {
    if (x < ws.multiplicity) return ws;
    x -= ws.multiplicity;
  }
  return schedules.back();
}

}  // namespace appclass::sched
