#include "sched/greedy.hpp"

#include <algorithm>
#include <array>
#include <map>
#include <numeric>

#include "common/assert.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"
#include "sim/testbed.hpp"
#include "workloads/catalog.hpp"

namespace appclass::sched {
namespace {

struct GreedyMetrics {
  obs::Histogram& place_seconds = obs::stage_histogram("greedy_place");
  obs::Counter& placements = obs::MetricsRegistry::global().counter(
      "appclass_sched_greedy_placements_total");
  obs::Counter& jobs_placed = obs::MetricsRegistry::global().counter(
      "appclass_sched_greedy_jobs_total");
};

GreedyMetrics& greedy_metrics() {
  static GreedyMetrics metrics;
  return metrics;
}

}  // namespace

int overlap_penalty(const PlacementProblem& problem,
                    const Placement& placement) {
  int penalty = 0;
  for (const auto& vm_jobs : placement) {
    std::array<int, core::kClassCount> per_class{};
    for (const std::size_t j : vm_jobs) {
      APPCLASS_EXPECTS(j < problem.jobs.size());
      ++per_class[core::index_of(problem.jobs[j].cls)];
    }
    for (const int c : per_class) penalty += c * (c - 1) / 2;
  }
  return penalty;
}

Placement greedy_place(const PlacementProblem& problem) {
  APPCLASS_EXPECTS(problem.feasible());
  GreedyMetrics& gm = greedy_metrics();
  // One placement decision = one span (exemplar ties the stage histogram
  // back to this trace) with the problem shape and outcome attached.
  obs::TraceSpan span("greedy_place", &gm.place_seconds);
  obs::ScopedTimer place_timer(gm.place_seconds);
  Placement placement(problem.vm_count);

  // Place the most numerous classes first: they are the hardest to spread.
  std::array<int, core::kClassCount> class_counts{};
  for (const auto& job : problem.jobs)
    ++class_counts[core::index_of(job.cls)];
  std::vector<std::size_t> order(problem.jobs.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return class_counts[core::index_of(problem.jobs[a].cls)] >
                            class_counts[core::index_of(problem.jobs[b].cls)];
                   });

  std::vector<std::array<int, core::kClassCount>> vm_class(
      problem.vm_count, std::array<int, core::kClassCount>{});
  for (const std::size_t j : order) {
    const std::size_t cls = core::index_of(problem.jobs[j].cls);
    std::size_t best_vm = problem.vm_count;  // sentinel
    for (std::size_t v = 0; v < problem.vm_count; ++v) {
      if (placement[v].size() >= problem.slots_per_vm) continue;
      if (best_vm == problem.vm_count) {
        best_vm = v;
        continue;
      }
      const int same = vm_class[v][cls];
      const int best_same = vm_class[best_vm][cls];
      if (same < best_same ||
          (same == best_same &&
           placement[v].size() < placement[best_vm].size()))
        best_vm = v;
    }
    APPCLASS_ASSERT(best_vm < problem.vm_count);
    placement[best_vm].push_back(j);
    ++vm_class[best_vm][cls];
  }
  const double seconds = place_timer.stop();
  gm.placements.inc();
  gm.jobs_placed.inc(problem.jobs.size());
  if (span.recording()) {
    span.add_attr({"jobs", problem.jobs.size()});
    span.add_attr({"vms", problem.vm_count});
    span.add_attr({"penalty", overlap_penalty(problem, placement)});
  }
  APPCLASS_LOG_DEBUG("sched.greedy_place", {"jobs", problem.jobs.size()},
                     {"vms", problem.vm_count},
                     {"penalty", overlap_penalty(problem, placement)},
                     {"seconds", seconds});
  return placement;
}

Placement random_place(const PlacementProblem& problem, linalg::Rng& rng) {
  APPCLASS_EXPECTS(problem.feasible());
  // Shuffle the flattened slot list and deal jobs into it.
  std::vector<std::size_t> slots;
  for (std::size_t v = 0; v < problem.vm_count; ++v)
    for (std::size_t s = 0; s < problem.slots_per_vm; ++s)
      slots.push_back(v);
  rng.shuffle(std::span<std::size_t>(slots));
  Placement placement(problem.vm_count);
  for (std::size_t j = 0; j < problem.jobs.size(); ++j)
    placement[slots[j]].push_back(j);
  return placement;
}

std::vector<std::int64_t> simulate_placement(const PlacementProblem& problem,
                                             const Placement& placement,
                                             std::uint64_t seed) {
  APPCLASS_EXPECTS(placement.size() == problem.vm_count);

  sim::Engine engine(seed);
  const sim::HostId host_a = engine.add_host(sim::make_host_a_spec());
  const sim::HostId host_b = engine.add_host(sim::make_host_b_spec());
  std::vector<sim::VmId> vms;
  for (std::size_t v = 0; v < problem.vm_count; ++v) {
    const sim::HostId host = (v % 2 == 0) ? host_a : host_b;
    vms.push_back(engine.add_vm(
        host, sim::make_vm_spec("vm" + std::to_string(v + 1),
                                "10.0.1." + std::to_string(v + 1))));
  }
  // Dedicated network-peer VM on host B.
  const sim::VmId peer = engine.add_vm(
      host_b, sim::make_vm_spec("peer", "10.0.1.200"));

  std::vector<sim::InstanceId> instance_of(problem.jobs.size());
  for (std::size_t v = 0; v < placement.size(); ++v) {
    for (const std::size_t j : placement[v]) {
      auto model = workloads::make_by_name(problem.jobs[j].app,
                                           static_cast<int>(peer));
      APPCLASS_EXPECTS(model != nullptr);
      instance_of[j] = engine.submit(vms[v], std::move(model));
    }
  }
  const bool done = engine.run_until_done(3'000'000);
  APPCLASS_ENSURES(done);

  std::vector<std::int64_t> elapsed(problem.jobs.size());
  for (std::size_t j = 0; j < problem.jobs.size(); ++j)
    elapsed[j] = engine.instance(instance_of[j]).elapsed();
  return elapsed;
}

double placement_throughput(const std::vector<std::int64_t>& elapsed) {
  double total = 0.0;
  for (const std::int64_t e : elapsed) {
    APPCLASS_EXPECTS(e > 0);
    total += 86400.0 / static_cast<double>(e);
  }
  return total;
}

}  // namespace appclass::sched
