// Job mixes and schedule enumeration for the paper's section 5.2
// experiment: nine jobs (three each of SPECseis96 'S', PostMark 'P',
// NetPIPE 'N') placed onto three VMs, three jobs per VM. Up to symmetry
// there are exactly ten schedules (paper Figure 4); a uniformly random
// *assignment* of jobs to VMs hits each schedule with a different
// multiplicity, which is what the paper's "weighted average" baseline
// weights by.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/class_label.hpp"

namespace appclass::sched {

/// A schedule: one multiset of job codes per VM, canonicalized so that
/// codes within a group are sorted and groups are sorted descending
/// (e.g. {"SSP","SPN","PNN"} -> groups as stored strings).
using Group = std::string;
using Schedule = std::vector<Group>;

/// A schedule together with the number of distinguishable job-to-VM
/// assignments that realize it.
struct WeightedSchedule {
  Schedule schedule;
  std::uint64_t multiplicity = 0;
};

/// Enumerates every distinct schedule of `job_counts` (code -> count) into
/// `groups` unordered groups of `group_size`, with multiplicities.
/// The total job count must equal groups * group_size.
std::vector<WeightedSchedule> enumerate_schedules(
    const std::map<char, int>& job_counts, int groups, int group_size);

/// Canonicalizes a schedule (sorts codes within groups, then groups).
Schedule canonicalize(Schedule schedule);

/// Renders "{(SPN),(SPN),(SPN)}".
std::string to_string(const Schedule& schedule);

/// Diversity score used by the class-aware policy: the number of distinct
/// classes per group, summed over groups. The all-distinct schedule
/// maximizes it.
int diversity_score(const Schedule& schedule,
                    const std::map<char, core::ApplicationClass>& classes);

}  // namespace appclass::sched
