// Multi-stage application analysis (paper sections 1 and 7).
//
// Long-running scientific applications move through stages that stress
// different resources; identifying the stages enables per-stage scheduling
// and migration decisions. This example builds a synthetic four-stage
// application (download input -> compute -> checkpoint -> upload results),
// classifies every snapshot, segments the timeline with the change-point
// detector, and reports each stage's dominant class.
#include <cstdio>
#include <string>
#include <vector>

#include "core/trainer.hpp"
#include "monitor/harness.hpp"
#include "sim/testbed.hpp"
#include "trace/timeseries.hpp"
#include "workloads/phased_app.hpp"

namespace {

using namespace appclass;

std::unique_ptr<sim::WorkloadModel> make_staged_app() {
  using workloads::Phase;
  sim::MemoryProfile mem;
  mem.working_set_mb = 60.0;

  Phase download;
  download.name = "download-input";
  download.work_units = 90.0;
  download.nominal_rate = 1.0;
  download.cpu_per_unit = 0.12;
  download.net_in_per_unit = 14.0e6;
  download.write_blocks_per_unit = 900.0;
  download.mem = mem;

  Phase compute;
  compute.name = "compute";
  compute.work_units = 260.0;
  compute.nominal_rate = 1.0;
  compute.cpu_per_unit = 1.0;
  compute.cpu_user_fraction = 0.97;
  compute.speed_sensitivity = 1.0;
  compute.mem = mem;

  Phase checkpoint;
  checkpoint.name = "checkpoint";
  checkpoint.work_units = 80.0;
  checkpoint.nominal_rate = 1.0;
  checkpoint.cpu_per_unit = 0.15;
  checkpoint.write_blocks_per_unit = 7500.0;
  checkpoint.mem = mem;

  Phase upload;
  upload.name = "upload-results";
  upload.work_units = 70.0;
  upload.nominal_rate = 1.0;
  upload.cpu_per_unit = 0.2;
  upload.cpu_user_fraction = 0.35;  // protocol + copy overhead is kernel time
  upload.net_out_per_unit = 12.0e6;
  upload.read_blocks_per_unit = 700.0;
  upload.mem = mem;

  return std::make_unique<workloads::PhasedApp>(
      "staged-science-app",
      std::vector<Phase>{download, compute, checkpoint, upload});
}

}  // namespace

int main() {
  const core::ClassificationPipeline pipeline = core::make_trained_pipeline();

  sim::TestbedOptions opts;
  opts.seed = 4711;
  opts.four_vms = false;
  sim::Testbed tb = sim::make_testbed(opts);
  monitor::ClusterMonitor mon(*tb.engine);
  const auto id = tb.engine->submit(tb.vm1, make_staged_app());
  const auto run = monitor::profile_instance(*tb.engine, mon, id, 5);
  const auto result = pipeline.classify(run.pool);

  std::printf("whole-run view (what a single-label scheduler would see):\n");
  std::printf("  class = %s, composition = %s\n\n",
              std::string(core::to_string(result.application_class)).c_str(),
              result.composition.to_string().c_str());

  // Segment the run: change points on the first principal component.
  trace::TimeSeries pc1;
  pc1.start_time = run.start_time;
  pc1.interval = 5;
  for (std::size_t i = 0; i < result.projected.rows(); ++i)
    pc1.values.push_back(result.projected(i, 0));
  const auto boundaries = trace::change_points(pc1, /*window=*/6,
                                               /*threshold=*/1.5);
  const auto segments =
      trace::segments_from_boundaries(pc1.size(), boundaries);

  std::printf("stage analysis (%zu detected stages):\n", segments.size());
  std::printf("%6s %10s %10s  %-10s %s\n", "stage", "start(s)", "end(s)",
              "class", "composition");
  for (std::size_t s = 0; s < segments.size(); ++s) {
    const auto [b, e] = segments[s];
    const std::vector<core::ApplicationClass> window(
        result.class_vector.begin() + static_cast<std::ptrdiff_t>(b),
        result.class_vector.begin() + static_cast<std::ptrdiff_t>(e));
    const core::ClassComposition comp(window);
    std::printf("%6zu %10lld %10lld  %-10s %s\n", s + 1,
                static_cast<long long>(pc1.time_at(b)),
                static_cast<long long>(pc1.time_at(e - 1) + 5),
                std::string(core::to_string(comp.dominant())).c_str(),
                comp.to_string().c_str());
  }
  std::printf("\nA migration-capable scheduler can match each stage to a "
              "different host\n(e.g. keep the compute stage on the fast CPU "
              "and the upload stage near the network).\n");
  return 0;
}
