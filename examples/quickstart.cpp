// Quickstart: train the paper's classifier and classify one application.
//
//   1. Train: profile the five canonical applications (SPECseis96,
//      PostMark, Pagebench, Ettcp, idle) on the simulated testbed and fit
//      the preprocessing + PCA + 3-NN pipeline.
//   2. Profile: run PostMark in a dedicated VM while a Ganglia-style
//      monitor samples 33 metrics every 5 seconds.
//   3. Classify: per-snapshot classes, the majority-vote Class, and the
//      class composition.
#include <cstdio>

#include "core/trainer.hpp"
#include "monitor/harness.hpp"
#include "sim/testbed.hpp"
#include "workloads/catalog.hpp"

int main() {
  using namespace appclass;

  // 1. Train the classifier from the canonical per-class runs.
  std::printf("training the classifier on the five canonical runs...\n");
  const core::ClassificationPipeline pipeline = core::make_trained_pipeline();
  std::printf("  PCA kept %zu of %zu dimensions (%.0f%% variance)\n",
              pipeline.pca().components(), pipeline.pca().input_dimension(),
              100.0 * pipeline.pca().captured_variance());
  std::printf("  k-NN trained on %zu labelled snapshots\n\n",
              pipeline.knn().training_size());

  // 2. Profile a PostMark run on the simulated testbed.
  std::printf("profiling postmark on VM1 (256 MB, host A)...\n");
  sim::TestbedOptions opts;
  opts.seed = 2026;
  opts.four_vms = false;
  sim::Testbed tb = sim::make_testbed(opts);
  monitor::ClusterMonitor mon(*tb.engine);
  const sim::InstanceId job =
      tb.engine->submit(tb.vm1, workloads::make_postmark());
  const monitor::ProfiledRun run =
      monitor::profile_instance(*tb.engine, mon, job, /*d=*/5);
  std::printf("  run completed in %lld s, %zu snapshots captured\n\n",
              static_cast<long long>(run.elapsed()), run.pool.size());

  // 3. Classify.
  const core::ClassificationResult result = pipeline.classify(run.pool);
  std::printf("application class: %s\n",
              std::string(core::to_string(result.application_class)).c_str());
  std::printf("class composition: %s\n",
              result.composition.to_string().c_str());
  std::printf("\nfirst snapshots: ");
  for (std::size_t i = 0; i < std::min<std::size_t>(10, result.class_vector.size()); ++i)
    std::printf("%s ",
                std::string(core::to_string(result.class_vector[i])).c_str());
  std::printf("...\n");
  return 0;
}
