// Online (streaming) classification.
//
// The paper's cost analysis (section 5.3, 15 ms/sample) concludes online
// training and classification are feasible. This example subscribes a
// trained classifier directly to the Ganglia-style metric bus and labels
// every incoming snapshot live, printing a rolling view of what each VM on
// the subnet is doing while several applications run concurrently.
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "core/trainer.hpp"
#include "monitor/harness.hpp"
#include "sim/testbed.hpp"
#include "workloads/catalog.hpp"

int main() {
  using namespace appclass;

  const core::ClassificationPipeline pipeline = core::make_trained_pipeline();

  sim::TestbedOptions opts;
  opts.seed = 31;
  opts.four_vms = true;
  sim::Testbed tb = sim::make_testbed(opts);
  monitor::ClusterMonitor mon(*tb.engine);

  // A mixed workload across the subnet.
  tb.engine->submit(tb.vm1, workloads::make_postmark());
  tb.engine->submit(tb.vm2, workloads::make_ch3d(300.0));
  tb.engine->submit(tb.vm3,
                    workloads::make_netpipe(static_cast<int>(tb.vm4)));

  // Live per-VM classification, one label per 5-second sample.
  std::map<std::string, std::vector<core::ApplicationClass>> live;
  mon.bus().subscribe([&](const metrics::Snapshot& s) {
    if (s.time % 5 != 0) return;
    live[s.node_ip].push_back(pipeline.classify(s));
  });

  const std::map<std::string, std::string> roles = {
      {"10.0.0.1", "vm1 (postmark)"},
      {"10.0.0.2", "vm2 (ch3d)"},
      {"10.0.0.3", "vm3 (netpipe)"},
      {"10.0.0.4", "vm4 (netpipe server)"}};

  // Advance the cluster and print a status line every simulated minute.
  for (int minute = 1; minute <= 5; ++minute) {
    tb.engine->run_for(60);
    std::printf("t = %3d s\n", 60 * minute);
    for (const auto& [ip, labels] : live) {
      if (labels.empty()) continue;
      // Rolling majority over the last 12 samples (one minute).
      const std::size_t window = std::min<std::size_t>(12, labels.size());
      const std::vector<core::ApplicationClass> recent(
          labels.end() - static_cast<std::ptrdiff_t>(window), labels.end());
      const core::ClassComposition comp(recent);
      std::printf("  %-22s -> %-8s  [%s]\n", roles.at(ip).c_str(),
                  std::string(core::to_string(comp.dominant())).c_str(),
                  comp.to_string().c_str());
    }
  }

  std::printf("\nlive labels consumed zero extra monitoring machinery: the "
              "classifier is just\nanother listener on the gmond "
              "announce channel.\n");
  return 0;
}
