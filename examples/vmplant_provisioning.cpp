// VMPlant-style provisioning (paper section 2).
//
// Demonstrates the substrate the classifier was built for: applications
// run in dedicated, automatically provisioned VMs. A golden image plus a
// per-application configuration DAG defines each environment; the plant
// caches configured clones, so the second VM for the same application
// provisions in a fraction of the time. The freshly provisioned VM is
// registered with the simulator, the application runs, and the classifier
// learns its class — the full VMPlant + classifier + database loop.
#include <cstdio>

#include "core/appdb.hpp"
#include "core/trainer.hpp"
#include "monitor/harness.hpp"
#include "sim/testbed.hpp"
#include "vmplant/plant.hpp"
#include "workloads/catalog.hpp"

int main() {
  using namespace appclass;

  vmplant::VmPlant plant;
  plant.register_image(vmplant::make_standard_image());

  sim::Engine engine(2026);
  const auto host_a = engine.add_host(sim::make_host_a_spec());

  const core::ClassificationPipeline pipeline = core::make_trained_pipeline();
  core::ApplicationDatabase db;

  std::printf("provisioning application VMs from the golden image:\n");
  const char* requests[] = {"postmark", "postmark", "ch3d"};
  int n = 0;
  for (const char* app : requests) {
    vmplant::CloneRequest request;
    request.image = "worker-256mb";
    request.config = vmplant::make_app_environment_dag(app);
    request.vm_name = std::string(app) + "-vm" + std::to_string(n);
    request.vm_ip = "10.0.9." + std::to_string(++n);

    const auto [vm, result] = plant.instantiate(engine, host_a, request);
    std::printf("  %-12s -> %s in %5.0f s (%zu cached actions%s)\n", app,
                request.vm_name.c_str(), result.provision_s,
                result.cached_actions,
                result.from_cache ? ", clone-cache hit" : "");

    // Run and learn the application's class in its fresh VM.
    monitor::ClusterMonitor mon(engine);
    const auto id = engine.submit(vm, workloads::make_by_name(app));
    const auto run = monitor::profile_instance(engine, mon, id, 5);
    const auto classified = pipeline.classify(run.pool);

    core::RunRecord record;
    record.application = app;
    record.config = "vmplant-256MB";
    record.composition = classified.composition;
    record.application_class = classified.application_class;
    record.elapsed_seconds = run.elapsed();
    record.samples = run.pool.size();
    db.record(record);
  }

  std::printf("\nlearned application profiles:\n");
  for (const auto& profile : db.all_profiles())
    std::printf("  %-12s class=%-8s runs=%zu mean_elapsed=%.0fs\n",
                profile.application.c_str(),
                std::string(core::to_string(profile.typical_class)).c_str(),
                profile.runs, profile.elapsed.mean());

  std::printf("\nthe second postmark VM skipped every configuration "
              "action thanks to the\nconfiguration-prefix clone cache — "
              "VMPlant's core trick, reproduced; ch3d\nstill reused the "
              "shared mount step.\n");
  return 0;
}
