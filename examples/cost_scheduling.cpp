// Cost-based scheduling (paper section 4.4).
//
// A resource provider defines per-class unit prices (alpha..epsilon); the
// classifier's learned compositions then price every historical run:
//   UnitApplicationCost = a*cpu% + b*mem% + g*io% + d*net% + e*idle%
// This example learns compositions for several applications, stores them
// in the application database, and prints two providers' price sheets.
#include <cstdio>
#include <string>
#include <vector>

#include "core/cost_model.hpp"
#include "core/trainer.hpp"
#include "monitor/harness.hpp"
#include "sim/testbed.hpp"
#include "workloads/catalog.hpp"

int main() {
  using namespace appclass;

  const core::ClassificationPipeline pipeline = core::make_trained_pipeline();

  // Learn each application's behaviour over one historical run.
  core::ApplicationDatabase db;
  const std::vector<std::string> apps = {"postmark", "ch3d", "netpipe",
                                         "stream", "vmd"};
  for (std::size_t i = 0; i < apps.size(); ++i) {
    sim::TestbedOptions opts;
    opts.seed = 900 + i;
    opts.four_vms = false;
    sim::Testbed tb = sim::make_testbed(opts);
    monitor::ClusterMonitor mon(*tb.engine);
    const auto id = tb.engine->submit(
        tb.vm1, workloads::make_by_name(apps[i], static_cast<int>(tb.vm4)));
    const auto run = monitor::profile_instance(*tb.engine, mon, id, 5);
    const auto result = pipeline.classify(run.pool);

    core::RunRecord record;
    record.application = apps[i];
    record.config = "vm-256MB";
    record.composition = result.composition;
    record.application_class = result.application_class;
    record.elapsed_seconds = run.elapsed();
    record.samples = run.pool.size();
    db.record(record);
  }

  // Two providers with different pricing schemes.
  const core::CostModel compute_provider(core::UnitCosts{
      .cpu = 5.0, .memory = 2.0, .io = 1.0, .network = 1.0, .idle = 0.1});
  const core::CostModel storage_provider(core::UnitCosts{
      .cpu = 1.0, .memory = 3.0, .io = 6.0, .network = 2.0, .idle = 0.1});

  std::printf("%-12s %-10s %8s %16s %16s\n", "application", "class",
              "elapsed", "compute-provider", "storage-provider");
  for (const auto& run : db.runs()) {
    std::printf("%-12s %-10s %7llds %16.1f %16.1f\n",
                run.application.c_str(),
                std::string(core::to_string(run.application_class)).c_str(),
                static_cast<long long>(run.elapsed_seconds),
                compute_provider.run_cost(run), storage_provider.run_cost(run));
  }
  std::printf("\n(cost = unit application cost x execution seconds; the same "
              "run prices differently\n under different provider schemes, "
              "driven entirely by its learned class composition)\n");
  return 0;
}
