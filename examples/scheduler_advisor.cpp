// Class-aware placement advisor.
//
// The full decision loop a VM scheduler (e.g. VMPlant) would run:
//   1. learn each application's class from historical profiled runs,
//   2. store the learned behaviour in the application database,
//   3. when a batch of jobs arrives, enumerate placements and pick the one
//      that maximizes class diversity per machine,
//   4. show the predicted benefit by simulating the chosen schedule
//      against the expected random placement.
#include <cstdio>
#include <map>
#include <string>

#include "core/trainer.hpp"
#include "monitor/harness.hpp"
#include "sched/experiment.hpp"
#include "sched/policy.hpp"
#include "sim/testbed.hpp"
#include "workloads/catalog.hpp"

int main() {
  using namespace appclass;

  const core::ClassificationPipeline pipeline = core::make_trained_pipeline();

  // --- 1. learn classes over historical runs -----------------------------
  core::ApplicationDatabase db;
  const std::map<char, std::string> code_to_app = {
      {'S', "specseis_small"}, {'P', "postmark"}, {'N', "netpipe"}};
  std::printf("learning application behaviour from historical runs:\n");
  for (const auto& [code, app] : code_to_app) {
    for (std::uint64_t rep = 0; rep < 2; ++rep) {  // two runs each
      sim::TestbedOptions opts;
      opts.seed = 600 + 10 * static_cast<std::uint64_t>(code) + rep;
      opts.four_vms = false;
      sim::Testbed tb = sim::make_testbed(opts);
      monitor::ClusterMonitor mon(*tb.engine);
      const auto id = tb.engine->submit(
          tb.vm1, workloads::make_by_name(app, static_cast<int>(tb.vm4)));
      const auto run = monitor::profile_instance(*tb.engine, mon, id, 5);
      const auto result = pipeline.classify(run.pool);
      core::RunRecord record;
      record.application = app;
      record.config = "vm-256MB";
      record.composition = result.composition;
      record.application_class = result.application_class;
      record.elapsed_seconds = run.elapsed();
      record.samples = run.pool.size();
      db.record(record);
    }
    const auto profile = db.profile(app, "vm-256MB");
    std::printf("  %-16s -> %-8s (mean run %.0f s over %zu runs)\n",
                app.c_str(),
                std::string(core::to_string(profile->typical_class)).c_str(),
                profile->elapsed.mean(), profile->runs);
  }

  // --- 2-3. advise a placement for 3x{S,P,N} on three VMs ----------------
  const auto classes =
      sched::classes_from_database(db, code_to_app, "vm-256MB");
  const auto schedules =
      sched::enumerate_schedules({{'S', 3}, {'P', 3}, {'N', 3}}, 3, 3);
  const auto& pick = sched::pick_class_aware(schedules, *classes);
  std::printf("\nadvised schedule: %s (class diversity %d/9)\n",
              sched::to_string(pick.schedule).c_str(),
              sched::diversity_score(pick.schedule, *classes));

  // --- 4. predicted benefit ----------------------------------------------
  const auto types = sched::paper_job_types();
  const auto outcomes = sched::run_all_schedules(schedules, types, 77);
  const double random_avg =
      sched::weighted_average_throughput(schedules, outcomes);
  double advised = 0.0;
  for (std::size_t i = 0; i < schedules.size(); ++i)
    if (schedules[i].schedule == pick.schedule)
      advised = outcomes[i].system_throughput_jobs_per_day();
  std::printf("predicted system throughput: %.0f jobs/day vs %.0f for a "
              "random placement (%+.1f%%)\n",
              advised, random_avg, 100.0 * (advised / random_avg - 1.0));
  return 0;
}
