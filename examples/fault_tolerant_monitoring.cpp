// Classification over a lossy monitoring path.
//
// Ganglia announcements travel over UDP: packets drop and nodes black out.
// This example routes the simulated cluster's announcements through a
// FaultyChannel (20% loss + occasional 30 s node blackouts) and through
// the binary wire format (encode -> decode, as a real deployment would),
// then classifies on the degraded stream — showing the majority-vote
// composition barely moves.
#include <cstdio>

#include "core/trainer.hpp"
#include "monitor/fault_injection.hpp"
#include "monitor/harness.hpp"
#include "monitor/wire.hpp"
#include "sim/testbed.hpp"
#include "workloads/catalog.hpp"

int main() {
  using namespace appclass;

  const core::ClassificationPipeline pipeline = core::make_trained_pipeline();

  const auto run_with_loss = [&](double drop, double blackout)
      -> core::ClassificationResult {
    sim::TestbedOptions opts;
    opts.seed = 515;
    opts.four_vms = false;
    sim::Testbed tb = sim::make_testbed(opts);
    monitor::ClusterMonitor mon(*tb.engine);

    // Degraded path: cluster bus -> faulty channel -> listener bus, with
    // every surviving announcement marshalled through the wire format.
    monitor::MetricBus degraded;
    monitor::FaultOptions faults;
    faults.drop_probability = drop;
    faults.blackout_probability = blackout;
    faults.blackout_s = 30;
    monitor::FaultyChannel channel(mon.bus(), degraded, faults, 99);

    metrics::DataPool pool("10.0.0.1");
    degraded.subscribe([&](const metrics::Snapshot& s) {
      const auto packet = monitor::encode_packet(s);
      const auto decoded = monitor::decode_packet(packet);
      if (!decoded) return;  // corrupt on the wire: discarded
      if (decoded->node_ip == "10.0.0.1" && decoded->time % 5 == 0)
        pool.add(*decoded);
    });

    const auto id = tb.engine->submit(tb.vm1, workloads::make_postmark());
    while (tb.engine->instance(id).state != sim::InstanceState::kFinished)
      tb.engine->step();
    std::printf("  loss=%.0f%% blackout=%.0f%%: %zu of ~%lld samples "
                "survived, ",
                100.0 * drop, 100.0 * blackout, pool.size(),
                static_cast<long long>(
                    tb.engine->instance(id).elapsed() / 5));
    return pipeline.classify(pool);
  };

  std::printf("classifying PostMark over increasingly degraded monitoring "
              "paths:\n");
  for (const auto& [drop, blackout] :
       std::initializer_list<std::pair<double, double>>{
           {0.0, 0.0}, {0.2, 0.0}, {0.4, 0.0}, {0.2, 0.02}}) {
    const auto result = run_with_loss(drop, blackout);
    std::printf("class=%s [%s]\n",
                std::string(core::to_string(result.application_class))
                    .c_str(),
                result.composition.to_string().c_str());
  }
  std::printf("\nthe class composition is a per-snapshot majority: losing "
              "samples thins the\nevidence but barely moves the verdict — "
              "the paper's design is loss-tolerant by\nconstruction.\n");
  return 0;
}
