#include "core/incremental.hpp"

#include <gtest/gtest.h>

#include "core_test_util.hpp"

namespace appclass::core {
namespace {

TEST(Incremental, NotReadyUntilTwoClasses) {
  IncrementalTrainer trainer;
  EXPECT_FALSE(trainer.ready());
  linalg::Rng rng(1);
  for (int i = 0; i < 5; ++i)
    trainer.add(testing::synthetic_snapshot(ApplicationClass::kCpu, rng, i),
                ApplicationClass::kCpu);
  EXPECT_FALSE(trainer.ready());
  trainer.add(testing::synthetic_snapshot(ApplicationClass::kIo, rng, 9),
              ApplicationClass::kIo);
  EXPECT_TRUE(trainer.ready());
}

TEST(Incremental, ReservoirBoundsMemory) {
  IncrementalTrainer trainer({}, {.reservoir_per_class = 50});
  linalg::Rng rng(2);
  for (int i = 0; i < 500; ++i)
    trainer.add(testing::synthetic_snapshot(ApplicationClass::kNetwork, rng,
                                            i),
                ApplicationClass::kNetwork);
  EXPECT_EQ(trainer.retained(ApplicationClass::kNetwork), 50u);
  EXPECT_EQ(trainer.seen(), 500u);
}

TEST(Incremental, TrainedPipelineClassifiesCorrectly) {
  IncrementalTrainer trainer;
  for (std::size_t c = 0; c < kClassCount; ++c)
    trainer.add_pool(
        testing::synthetic_pool(class_from_index(c), 40, 10 + c),
        class_from_index(c));
  ASSERT_TRUE(trainer.ready());
  const ClassificationPipeline pipeline = trainer.train();
  for (std::size_t c = 0; c < kClassCount; ++c) {
    const auto pool =
        testing::synthetic_pool(class_from_index(c), 20, 500 + c);
    EXPECT_EQ(pipeline.classify(pool).application_class, class_from_index(c));
  }
}

TEST(Incremental, RetrainingAdaptsToNewData) {
  // Train on two classes, later add a third; retraining picks it up.
  IncrementalTrainer trainer;
  trainer.add_pool(testing::synthetic_pool(ApplicationClass::kCpu, 40, 1),
                   ApplicationClass::kCpu);
  trainer.add_pool(testing::synthetic_pool(ApplicationClass::kIdle, 40, 2),
                   ApplicationClass::kIdle);
  const ClassificationPipeline first = trainer.train();
  const auto io_pool = testing::synthetic_pool(ApplicationClass::kIo, 20, 3);
  // The two-class model cannot produce an IO label at all.
  EXPECT_NE(first.classify(io_pool).application_class,
            ApplicationClass::kIo);

  trainer.add_pool(testing::synthetic_pool(ApplicationClass::kIo, 40, 4),
                   ApplicationClass::kIo);
  const ClassificationPipeline second = trainer.train();
  EXPECT_EQ(second.classify(io_pool).application_class,
            ApplicationClass::kIo);
}

TEST(Incremental, ReservoirRemainsClassBalancedUnderSkew) {
  // 10x more CPU samples than IO: the reservoirs stay capped per class, so
  // the training set cannot be swamped by the majority class.
  IncrementalTrainer trainer({}, {.reservoir_per_class = 30});
  linalg::Rng rng(5);
  for (int i = 0; i < 1000; ++i)
    trainer.add(testing::synthetic_snapshot(ApplicationClass::kCpu, rng, i),
                ApplicationClass::kCpu);
  for (int i = 0; i < 100; ++i)
    trainer.add(testing::synthetic_snapshot(ApplicationClass::kIo, rng, i),
                ApplicationClass::kIo);
  EXPECT_EQ(trainer.retained(ApplicationClass::kCpu), 30u);
  EXPECT_EQ(trainer.retained(ApplicationClass::kIo), 30u);
}

TEST(Incremental, DeterministicForSameSeed) {
  auto build = [] {
    IncrementalTrainer trainer({}, {.reservoir_per_class = 20, .seed = 9});
    linalg::Rng rng(6);
    for (int i = 0; i < 300; ++i)
      trainer.add(
          testing::synthetic_snapshot(ApplicationClass::kMemory, rng, i),
          ApplicationClass::kMemory);
    trainer.add_pool(testing::synthetic_pool(ApplicationClass::kIdle, 20, 7),
                     ApplicationClass::kIdle);
    return trainer.train();
  };
  const auto a = build();
  const auto b = build();
  EXPECT_LT(a.knn().training_points().max_abs_diff(b.knn().training_points()),
            1e-15);
}

}  // namespace
}  // namespace appclass::core
