// Shared helpers for the core-library tests: synthetic, well-separated
// labelled pools so classifier behaviour can be asserted without running
// the simulator.
#pragma once

#include <string>

#include "core/pipeline.hpp"
#include "linalg/random.hpp"

namespace appclass::core::testing {

/// One synthetic snapshot with the expert metrics set around class-typical
/// levels plus Gaussian jitter.
inline metrics::Snapshot synthetic_snapshot(ApplicationClass cls,
                                            linalg::Rng& rng,
                                            metrics::SimTime t) {
  using metrics::MetricId;
  metrics::Snapshot s;
  s.time = t;
  s.node_ip = "10.0.0.1";
  const auto jitter = [&](double v, double sigma) {
    return std::max(0.0, v + rng.normal(0.0, sigma));
  };
  switch (cls) {
    case ApplicationClass::kIdle:
      s.set(MetricId::kCpuSystem, jitter(0.5, 0.2));
      break;
    case ApplicationClass::kCpu:
      s.set(MetricId::kCpuUser, jitter(95.0, 2.0));
      s.set(MetricId::kCpuSystem, jitter(3.0, 1.0));
      break;
    case ApplicationClass::kIo:
      s.set(MetricId::kCpuSystem, jitter(20.0, 3.0));
      s.set(MetricId::kCpuUser, jitter(8.0, 2.0));
      s.set(MetricId::kIoBi, jitter(5000.0, 500.0));
      s.set(MetricId::kIoBo, jitter(5000.0, 500.0));
      break;
    case ApplicationClass::kNetwork:
      s.set(MetricId::kCpuSystem, jitter(15.0, 3.0));
      s.set(MetricId::kBytesIn, jitter(1.0e6, 1.0e5));
      s.set(MetricId::kBytesOut, jitter(2.0e7, 2.0e6));
      break;
    case ApplicationClass::kMemory:
      s.set(MetricId::kCpuSystem, jitter(15.0, 3.0));
      s.set(MetricId::kSwapIn, jitter(2500.0, 300.0));
      s.set(MetricId::kSwapOut, jitter(2500.0, 300.0));
      s.set(MetricId::kIoBi, jitter(2500.0, 300.0));
      s.set(MetricId::kIoBo, jitter(2500.0, 300.0));
      break;
  }
  return s;
}

/// A pool of `count` synthetic snapshots of one class.
inline metrics::DataPool synthetic_pool(ApplicationClass cls,
                                        std::size_t count,
                                        std::uint64_t seed) {
  linalg::Rng rng(seed);
  metrics::DataPool pool("10.0.0.1");
  for (std::size_t i = 0; i < count; ++i)
    pool.add(synthetic_snapshot(cls, rng, static_cast<metrics::SimTime>(5 * i)));
  return pool;
}

/// Five labelled pools, one per class.
inline std::vector<LabeledPool> synthetic_training(std::size_t per_class = 40,
                                                   std::uint64_t seed = 7) {
  std::vector<LabeledPool> out;
  for (std::size_t c = 0; c < kClassCount; ++c)
    out.push_back(LabeledPool{
        synthetic_pool(class_from_index(c), per_class, seed + c),
        class_from_index(c)});
  return out;
}

}  // namespace appclass::core::testing
