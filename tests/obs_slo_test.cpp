// Multi-window error-budget SLO tracking: burn-rate math, per-second
// ring eviction, the both-windows alert rule (short window = happening
// now, long window = not a blip), and the JSON verdict /healthz serves.
// Time is injected so every window transition is deterministic.
#include "obs/slo.hpp"

#include <gtest/gtest.h>

#include <string>

namespace appclass::obs {
namespace {

SloOptions tight_options() {
  SloOptions options;
  options.freshness_objective = 0.9;  // 10% budget: burn = error_rate * 10
  options.freshness_threshold_s = 1.0;
  options.availability_objective = 0.9;
  options.short_window_s = 10;
  options.long_window_s = 100;
  return options;
}

TEST(ObsSloTest, EmptyTrackerIsHealthyWithZeroBurn) {
  const SloTracker slo(tight_options());
  const auto report = slo.report(1000);
  EXPECT_TRUE(report.healthy);
  EXPECT_FALSE(report.freshness.burning);
  EXPECT_FALSE(report.availability.burning);
  EXPECT_EQ(report.availability.short_window.good, 0u);
  EXPECT_EQ(report.availability.short_window.error_rate, 0.0);
  EXPECT_EQ(report.availability.short_window.burn_rate, 0.0);
}

TEST(ObsSloTest, BurnRateIsErrorRateOverBudget) {
  SloTracker slo(tight_options());
  // 3 good + 1 bad probe in one second: error rate 0.25, budget 0.1.
  for (int i = 0; i < 3; ++i) slo.record_availability(true, 100);
  slo.record_availability(false, 100);
  const auto report = slo.report(100);
  EXPECT_EQ(report.availability.short_window.good, 3u);
  EXPECT_EQ(report.availability.short_window.bad, 1u);
  EXPECT_DOUBLE_EQ(report.availability.short_window.error_rate, 0.25);
  EXPECT_DOUBLE_EQ(report.availability.short_window.burn_rate, 2.5);
}

TEST(ObsSloTest, FreshnessThresholdSplitsGoodFromBad) {
  SloTracker slo(tight_options());
  slo.record_freshness(0.5, 100);   // under the 1s threshold: good
  slo.record_freshness(1.0, 100);   // at the threshold: still good
  slo.record_freshness(3.0, 100);   // over: bad
  const auto report = slo.report(100);
  EXPECT_EQ(report.freshness.short_window.good, 2u);
  EXPECT_EQ(report.freshness.short_window.bad, 1u);
}

TEST(ObsSloTest, AlertOnlyWhenBothWindowsBurn) {
  SloTracker slo(tight_options());
  // A burst of failures at t=100 trips both the 10s and 100s windows.
  for (int i = 0; i < 20; ++i) slo.record_availability(false, 100);
  EXPECT_FALSE(slo.healthy(100));
  EXPECT_TRUE(slo.report(100).availability.burning);

  // 30s later the short window no longer covers the burst: the alert
  // clears even though the long window still remembers it. This is the
  // anti-flap half of the multi-window rule — recovery is fast.
  const auto later = slo.report(130);
  EXPECT_GT(later.availability.long_window.bad, 0u);
  EXPECT_EQ(later.availability.short_window.bad, 0u);
  EXPECT_FALSE(later.availability.burning);
  EXPECT_TRUE(later.healthy);
}

TEST(ObsSloTest, SteadyLowErrorRateUnderBudgetNeverAlerts) {
  SloTracker slo(tight_options());
  // 5% errors against a 10% budget: burn rate 0.5 in both windows.
  for (int t = 0; t < 100; ++t) {
    for (int i = 0; i < 19; ++i) slo.record_availability(true, t);
    slo.record_availability(false, t);
  }
  const auto report = slo.report(99);
  EXPECT_DOUBLE_EQ(report.availability.long_window.error_rate, 0.05);
  EXPECT_DOUBLE_EQ(report.availability.long_window.burn_rate, 0.5);
  EXPECT_TRUE(report.healthy);
}

TEST(ObsSloTest, RingEvictsSecondsBeyondTheLongWindow) {
  SloTracker slo(tight_options());
  for (int i = 0; i < 50; ++i) slo.record_availability(false, 100);
  // Advancing a full long window past the burst wipes every bucket.
  const auto report = slo.report(100 + 100);
  EXPECT_EQ(report.availability.long_window.bad, 0u);
  EXPECT_EQ(report.availability.long_window.good, 0u);
  EXPECT_TRUE(report.healthy);
}

TEST(ObsSloTest, BackwardsClockClampsToNewestBucket) {
  SloTracker slo(tight_options());
  slo.record_availability(true, 100);
  // A sample stamped in the past lands in the newest bucket instead of
  // resurrecting (or corrupting) an already-evicted second.
  slo.record_availability(false, 50);
  const auto report = slo.report(100);
  EXPECT_EQ(report.availability.short_window.good, 1u);
  EXPECT_EQ(report.availability.short_window.bad, 1u);
}

TEST(ObsSloTest, JsonVerdictCarriesHealthAndBothWindows) {
  SloTracker slo(tight_options());
  for (int i = 0; i < 20; ++i) slo.record_availability(false, 100);
  const std::string json = slo.to_json(100);
  EXPECT_NE(json.find("\"healthy\":false"), std::string::npos);
  EXPECT_NE(json.find("\"now_s\":100"), std::string::npos);
  EXPECT_NE(json.find("\"freshness\":"), std::string::npos);
  EXPECT_NE(json.find("\"availability\":"), std::string::npos);
  EXPECT_NE(json.find("\"window_s\":10"), std::string::npos);
  EXPECT_NE(json.find("\"window_s\":100"), std::string::npos);
  EXPECT_NE(json.find("\"burning\":true"), std::string::npos);
  EXPECT_EQ(json.back(), '\n');

  const std::string healthy = SloTracker(tight_options()).to_json(5);
  EXPECT_NE(healthy.find("\"healthy\":true"), std::string::npos);
}

}  // namespace
}  // namespace appclass::obs
