#include "linalg/matrix.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace appclass::linalg {
namespace {

TEST(Matrix, DefaultConstructedIsEmpty) {
  const Matrix m;
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(m.cols(), 0u);
  EXPECT_TRUE(m.empty());
}

TEST(Matrix, FillConstruction) {
  const Matrix m(2, 3, 7.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  for (std::size_t r = 0; r < 2; ++r)
    for (std::size_t c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(m.at(r, c), 7.5);
}

TEST(Matrix, InitializerListConstruction) {
  const Matrix m{{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}};
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_DOUBLE_EQ(m.at(2, 1), 6.0);
}

TEST(Matrix, FromRowsTakesOwnership) {
  const Matrix m = Matrix::from_rows(2, 2, {1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(m.at(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m.at(1, 0), 3.0);
}

TEST(Matrix, IdentityHasOnesOnDiagonal) {
  const Matrix i = Matrix::identity(4);
  for (std::size_t r = 0; r < 4; ++r)
    for (std::size_t c = 0; c < 4; ++c)
      EXPECT_DOUBLE_EQ(i.at(r, c), r == c ? 1.0 : 0.0);
}

TEST(Matrix, RowSpanAliasesStorage) {
  Matrix m(2, 3, 0.0);
  auto row = m.row(1);
  row[2] = 42.0;
  EXPECT_DOUBLE_EQ(m.at(1, 2), 42.0);
}

TEST(Matrix, ColCopiesStridedColumn) {
  const Matrix m{{1, 2}, {3, 4}, {5, 6}};
  const std::vector<double> c = m.col(1);
  EXPECT_EQ(c, (std::vector<double>{2, 4, 6}));
}

TEST(Matrix, SetRowAndSetCol) {
  Matrix m(2, 2, 0.0);
  const std::vector<double> r = {1, 2};
  const std::vector<double> c = {3, 4};
  m.set_row(0, r);
  m.set_col(1, c);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 3.0);  // set_col overwrote
  EXPECT_DOUBLE_EQ(m.at(1, 1), 4.0);
}

TEST(Matrix, AppendRowGrowsAndDefinesShape) {
  Matrix m;
  const std::vector<double> r0 = {1, 2, 3};
  const std::vector<double> r1 = {4, 5, 6};
  m.append_row(r0);
  m.append_row(r1);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m.at(1, 2), 6.0);
}

TEST(Matrix, TransposeSwapsIndices) {
  const Matrix m{{1, 2, 3}, {4, 5, 6}};
  const Matrix t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  for (std::size_t r = 0; r < 2; ++r)
    for (std::size_t c = 0; c < 3; ++c)
      EXPECT_DOUBLE_EQ(t.at(c, r), m.at(r, c));
}

TEST(Matrix, TransposeIsInvolution) {
  const Matrix m{{1, 2, 3}, {4, 5, 6}};
  EXPECT_EQ(m.transposed().transposed(), m);
}

TEST(Matrix, MultiplyKnownProduct) {
  const Matrix a{{1, 2}, {3, 4}};
  const Matrix b{{5, 6}, {7, 8}};
  const Matrix c = a * b;
  EXPECT_DOUBLE_EQ(c.at(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c.at(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c.at(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c.at(1, 1), 50.0);
}

TEST(Matrix, MultiplyByIdentityIsNoop) {
  const Matrix a{{1, 2, 3}, {4, 5, 6}};
  EXPECT_EQ(a * Matrix::identity(3), a);
  EXPECT_EQ(Matrix::identity(2) * a, a);
}

TEST(Matrix, MultiplyRectangularShapes) {
  const Matrix a(3, 5, 1.0);
  const Matrix b(5, 2, 2.0);
  const Matrix c = a * b;
  EXPECT_EQ(c.rows(), 3u);
  EXPECT_EQ(c.cols(), 2u);
  EXPECT_DOUBLE_EQ(c.at(2, 1), 10.0);
}

TEST(Matrix, MatrixVectorProduct) {
  const Matrix a{{1, 2}, {3, 4}};
  const std::vector<double> v = {5, 6};
  const std::vector<double> out = a.multiply(v);
  EXPECT_DOUBLE_EQ(out[0], 17.0);
  EXPECT_DOUBLE_EQ(out[1], 39.0);
}

TEST(Matrix, AdditionSubtractionScaling) {
  const Matrix a{{1, 2}, {3, 4}};
  const Matrix b{{4, 3}, {2, 1}};
  EXPECT_EQ(a + b, Matrix(2, 2, 5.0));
  EXPECT_EQ((a + b) - b, a);
  EXPECT_EQ(a * 2.0, (Matrix{{2, 4}, {6, 8}}));
  EXPECT_EQ(2.0 * a, a * 2.0);
}

TEST(Matrix, MaxAbsDiff) {
  const Matrix a{{1, 2}, {3, 4}};
  Matrix b = a;
  b(1, 0) += 0.25;
  EXPECT_DOUBLE_EQ(a.max_abs_diff(b), 0.25);
  EXPECT_DOUBLE_EQ(a.max_abs_diff(a), 0.0);
}

TEST(Matrix, FrobeniusNorm) {
  const Matrix a{{3, 0}, {0, 4}};
  EXPECT_DOUBLE_EQ(a.frobenius_norm(), 5.0);
}

TEST(Matrix, BlockExtractsSubmatrix) {
  const Matrix m{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}};
  const Matrix b = m.block(1, 1, 2, 2);
  EXPECT_EQ(b, (Matrix{{5, 6}, {8, 9}}));
}

TEST(Matrix, ToStringMentionsValues) {
  const Matrix m{{1.5}};
  EXPECT_NE(m.to_string().find("1.5"), std::string::npos);
}

TEST(VectorOps, EuclideanDistance) {
  const std::vector<double> a = {0, 0};
  const std::vector<double> b = {3, 4};
  EXPECT_DOUBLE_EQ(euclidean_distance(a, b), 5.0);
  EXPECT_DOUBLE_EQ(squared_distance(a, b), 25.0);
}

TEST(VectorOps, ManhattanDistance) {
  const std::vector<double> a = {1, -1};
  const std::vector<double> b = {-2, 3};
  EXPECT_DOUBLE_EQ(manhattan_distance(a, b), 7.0);
}

TEST(VectorOps, DotAndNorm) {
  const std::vector<double> a = {1, 2, 2};
  EXPECT_DOUBLE_EQ(dot(a, a), 9.0);
  EXPECT_DOUBLE_EQ(norm(a), 3.0);
}

TEST(VectorOps, DistanceIsSymmetric) {
  const std::vector<double> a = {1, 2, 3};
  const std::vector<double> b = {-1, 0, 7};
  EXPECT_DOUBLE_EQ(euclidean_distance(a, b), euclidean_distance(b, a));
  EXPECT_DOUBLE_EQ(manhattan_distance(a, b), manhattan_distance(b, a));
}

TEST(VectorOps, TriangleInequalityHolds) {
  const std::vector<double> a = {0, 0, 1};
  const std::vector<double> b = {2, -1, 4};
  const std::vector<double> c = {5, 5, 5};
  EXPECT_LE(euclidean_distance(a, c),
            euclidean_distance(a, b) + euclidean_distance(b, c) + 1e-12);
}

}  // namespace
}  // namespace appclass::linalg
