// The streaming-ingest path's zero-allocation and overflow contracts:
// the SnapshotRing mechanics (wraparound, displacement, warm-slot reuse),
// the FleetStream overflow policies and hook-attach/horizon semantics,
// the RCU bus announce, and — the headline regression guard — an
// operator-new counter proving a warmed push→drain cycle touches the
// heap zero times.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "core/online.hpp"
#include "core/pipeline.hpp"
#include "core_test_util.hpp"
#include "engine/fleet.hpp"
#include "engine/snapshot_ring.hpp"
#include "monitor/bus.hpp"

// ---------------------------------------------------------------------------
// Global allocation counter. Every operator-new form funnels through
// malloc here so the tests below can assert "this region performed N
// heap allocations" — the only reliable way to keep the zero-allocation
// claim from regressing one vector at a time.
namespace {
std::atomic<std::uint64_t> g_allocations{0};

void* counted_alloc(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* counted_aligned_alloc(std::size_t size, std::size_t align) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, align, size ? size : align) != 0)
    throw std::bad_alloc();
  return p;
}
}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
// ---------------------------------------------------------------------------

namespace appclass {
namespace {

using engine::SnapshotRing;

std::uint64_t allocations() {
  return g_allocations.load(std::memory_order_relaxed);
}

metrics::Snapshot grid_snapshot(core::ApplicationClass cls, std::uint64_t seed,
                                metrics::SimTime t,
                                const std::string& node_ip = "10.0.0.1") {
  linalg::Rng rng(seed);
  metrics::Snapshot s = core::testing::synthetic_snapshot(cls, rng, t);
  s.node_ip = node_ip;
  return s;
}

// --- SnapshotRing mechanics ------------------------------------------------

TEST(SnapshotRingTest, AppendWrapsAndKeepsLogicalOrder) {
  SnapshotRing ring;
  ring.reserve(4);
  const std::size_t cap = ring.capacity();
  ASSERT_GE(cap, 4u);
  // Fill, drain a few, refill past the physical end: logical order must
  // survive the wraparound.
  for (std::size_t i = 0; i < cap; ++i) ring.append().seq = i;
  EXPECT_EQ(ring.size(), cap);
  ring.clear();
  EXPECT_EQ(ring.size(), 0u);
  // Offset the head by displacing so the logical view wraps the array:
  // the survivors shift to the front, the displaced slots re-enter as
  // the newest entries.
  for (std::size_t i = 0; i < cap; ++i) ring.append().seq = 100 + i;
  for (std::size_t i = 0; i < cap / 2; ++i)
    ring.displace_oldest().seq = 200 + i;
  ASSERT_EQ(ring.size(), cap);
  for (std::size_t i = 0; i < cap / 2; ++i)
    EXPECT_EQ(ring.at(i).seq, 100 + cap / 2 + i) << "i=" << i;
  for (std::size_t i = 0; i < cap / 2; ++i)
    EXPECT_EQ(ring.at(cap / 2 + i).seq, 200 + i) << "i=" << i;
}

TEST(SnapshotRingTest, GrowthRelinearizesLiveSlots) {
  SnapshotRing ring;
  const std::uint64_t grows_before = ring.grows();
  for (std::uint64_t i = 0; i < 100; ++i) ring.append().seq = i;
  EXPECT_EQ(ring.size(), 100u);
  EXPECT_GT(ring.grows(), grows_before);
  for (std::uint64_t i = 0; i < 100; ++i) EXPECT_EQ(ring.at(i).seq, i);
}

TEST(SnapshotRingTest, DisplaceOldestReusesSlotAsNewest) {
  SnapshotRing ring;
  ring.reserve(4);
  const std::size_t cap = ring.capacity();
  for (std::uint64_t i = 0; i < cap; ++i) {
    SnapshotRing::Slot& slot = ring.append();
    slot.seq = i;
    slot.snapshot.time = static_cast<metrics::SimTime>(i);
  }
  SnapshotRing::Slot& displaced = ring.displace_oldest();
  EXPECT_EQ(displaced.seq, 0u);  // full ring: the retired slot's storage
  displaced.seq = 99;
  EXPECT_EQ(ring.size(), cap);  // ...size unchanged...
  EXPECT_EQ(ring.at(0).seq, 1u);
  EXPECT_EQ(ring.at(ring.size() - 1).seq, 99u);  // ...slot is now newest
}

TEST(SnapshotRingTest, DisplaceOnPartiallyFullRingKeepsLogicalWindow) {
  // The FleetStream case: logical size (max_backlog) below physical
  // capacity. Displacing must hand back the slot at the *newest logical
  // position*, not the retired slot's storage — assigning anywhere else
  // would leave a stale entry inside the window.
  SnapshotRing ring;
  ring.reserve(8);
  ASSERT_GT(ring.capacity(), 4u);
  for (std::uint64_t i = 0; i < 4; ++i) ring.append().seq = i;
  for (std::uint64_t round = 0; round < 2 * ring.capacity(); ++round) {
    ring.displace_oldest().seq = 10 + round;
    ASSERT_EQ(ring.size(), 4u);
    for (std::uint64_t i = 0; i < 4; ++i) {
      const std::uint64_t expected =
          round + 1 + i < 4 ? round + 1 + i : 10 + (round + 1 + i) - 4;
      EXPECT_EQ(ring.at(i).seq, expected) << "round=" << round << " i=" << i;
    }
  }
}

TEST(SnapshotRingTest, ClearAndSwapKeepWarmedSlots) {
  SnapshotRing ring;
  ring.append().snapshot.node_ip =
      "a-node-ip-long-enough-to-defeat-small-string-optimization";
  const std::size_t cap = ring.capacity();
  ring.clear();
  EXPECT_EQ(ring.capacity(), cap);  // slots survive clear()
  // A warmed slot hands back its string capacity: re-appending and
  // assigning an equally long name must not allocate.
  const std::string name(50, 'x');
  SnapshotRing::Slot& slot = ring.append();
  const std::uint64_t before = allocations();
  slot.snapshot.node_ip = name;
  EXPECT_EQ(allocations(), before);

  SnapshotRing other;
  other.swap(ring);
  EXPECT_EQ(other.capacity(), cap);
  EXPECT_EQ(other.size(), 1u);
  EXPECT_EQ(ring.size(), 0u);
}

// --- MetricBus (RCU announce) ---------------------------------------------

TEST(BusIngestTest, AnnounceIsAllocationFree) {
  monitor::MetricBus bus;
  std::size_t seen = 0;
  bus.subscribe([&seen](const metrics::Snapshot&) { ++seen; });
  bus.subscribe([&seen](const metrics::Snapshot&) { ++seen; });
  const metrics::Snapshot snapshot =
      grid_snapshot(core::ApplicationClass::kCpu, 1, 0);
  bus.announce(snapshot);  // warm any lazy metrics singletons
  const std::uint64_t before = allocations();
  for (int i = 0; i < 100; ++i) bus.announce(snapshot);
  EXPECT_EQ(allocations(), before);
  EXPECT_EQ(seen, 202u);
}

TEST(BusIngestTest, ListenerMayUnsubscribeReentrantly) {
  monitor::MetricBus bus;
  std::size_t calls = 0;
  monitor::SubscriptionId self = 0;
  self = bus.subscribe([&](const metrics::Snapshot&) {
    ++calls;
    bus.unsubscribe(self);  // rebuilds the list while announce iterates
  });
  std::size_t other_calls = 0;
  bus.subscribe([&](const metrics::Snapshot&) { ++other_calls; });

  const metrics::Snapshot snapshot =
      grid_snapshot(core::ApplicationClass::kIdle, 2, 0);
  bus.announce(snapshot);
  EXPECT_EQ(calls, 1u);
  EXPECT_EQ(other_calls, 1u);
  EXPECT_EQ(bus.listener_count(), 1u);
  bus.announce(snapshot);
  EXPECT_EQ(calls, 1u);  // unsubscribed listener no longer invoked
  EXPECT_EQ(other_calls, 2u);
}

// --- FleetStream overflow, hook, and peak semantics ------------------------

class FleetIngestTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    pipeline_ = new core::ClassificationPipeline();
    pipeline_->train(core::testing::synthetic_training());
  }
  static void TearDownTestSuite() {
    delete pipeline_;
    pipeline_ = nullptr;
  }

  /// `count` grid-aligned snapshots (t = t0, t0+5, ...) of one class.
  static std::vector<metrics::Snapshot> stream(core::ApplicationClass cls,
                                               std::size_t count,
                                               metrics::SimTime t0 = 0) {
    std::vector<metrics::Snapshot> out;
    out.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
      out.push_back(grid_snapshot(
          cls, 10 + i, t0 + static_cast<metrics::SimTime>(i) * 5));
    return out;
  }

  static core::ClassificationPipeline* pipeline_;
};

core::ClassificationPipeline* FleetIngestTest::pipeline_ = nullptr;

TEST_F(FleetIngestTest, OverwriteOldestKeepsNewestSnapshots) {
  engine::FleetStream fleet(
      *pipeline_, {}, /*max_backlog=*/4,
      engine::FleetStream::OverflowPolicy::kOverwriteOldest);
  const auto snapshots = stream(core::ApplicationClass::kCpu, 6);
  for (const auto& snapshot : snapshots) EXPECT_TRUE(fleet.push(snapshot));
  EXPECT_EQ(fleet.backlog(), 4u);
  EXPECT_EQ(fleet.overwritten(), 2u);
  EXPECT_EQ(fleet.dropped(), 0u);

  // The drain must see the 4 *newest* snapshots, in push order — the
  // classifier's window ends at the stream's last time, not the first.
  EXPECT_EQ(fleet.drain(), 4u);
  const core::OnlineStateImage state = fleet.online().export_state();
  ASSERT_EQ(state.nodes.size(), 1u);
  ASSERT_EQ(state.nodes[0].window.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_EQ(state.nodes[0].window[i].first, snapshots[2 + i].time);
}

TEST_F(FleetIngestTest, DropNewestStillRejectsOnFull) {
  engine::FleetStream fleet(*pipeline_, {}, /*max_backlog=*/2,
                            engine::FleetStream::OverflowPolicy::kDropNewest);
  const auto snapshots = stream(core::ApplicationClass::kIo, 5);
  std::size_t accepted = 0;
  for (const auto& snapshot : snapshots)
    if (fleet.push(snapshot)) ++accepted;
  EXPECT_EQ(accepted, 2u);
  EXPECT_EQ(fleet.dropped(), 3u);
  EXPECT_EQ(fleet.overwritten(), 0u);
}

TEST_F(FleetIngestTest, HookAttachMidStreamAdvancesHorizonExactly) {
  engine::FleetStream fleet(*pipeline_);
  const auto snapshots = stream(core::ApplicationClass::kNetwork, 6);

  // Pre-hook pushes carry no sequence and never advance the horizon.
  fleet.push(snapshots[0]);
  fleet.push(snapshots[1]);
  EXPECT_EQ(fleet.drain(), 2u);
  EXPECT_EQ(fleet.ingested_wal_horizon(), 0u);

  std::uint64_t next_seq = 7;  // a recovered WAL resumes mid-sequence
  fleet.set_ingest_hook(
      [&next_seq](const metrics::Snapshot&) { return next_seq++; });
  fleet.push(snapshots[2]);
  fleet.push(snapshots[3]);
  EXPECT_EQ(fleet.drain(), 2u);
  EXPECT_EQ(fleet.ingested_wal_horizon(), 9u);  // seqs 7,8 ingested

  // An empty drain or a hookless interleave must not regress it.
  EXPECT_EQ(fleet.drain(), 0u);
  EXPECT_EQ(fleet.ingested_wal_horizon(), 9u);

  // Re-installing a hook starts a fresh log: horizon resets to 0.
  fleet.set_ingest_hook(
      [](const metrics::Snapshot&) -> std::uint64_t { return 0; });
  EXPECT_EQ(fleet.ingested_wal_horizon(), 0u);
  fleet.push(snapshots[4]);
  EXPECT_EQ(fleet.drain(), 1u);
  EXPECT_EQ(fleet.ingested_wal_horizon(), 1u);
}

TEST_F(FleetIngestTest, BacklogPeakIsStickyAcrossDrainsAndResetByAttach) {
  engine::FleetStream fleet(*pipeline_);
  const auto snapshots = stream(core::ApplicationClass::kMemory, 8);
  for (const auto& snapshot : snapshots) fleet.push(snapshot);
  EXPECT_EQ(fleet.backlog_peak(), 8u);
  EXPECT_EQ(fleet.drain(), 8u);
  fleet.push(snapshots[0]);
  EXPECT_EQ(fleet.backlog_peak(), 8u);  // sticky across the drain

  // attach() starts a new subscription episode with a fresh peak.
  monitor::MetricBus bus;
  fleet.attach(bus);
  EXPECT_EQ(fleet.backlog_peak(), 0u);
  bus.announce(snapshots[0]);
  bus.announce(snapshots[1]);
  EXPECT_EQ(fleet.backlog_peak(), 3u);  // 1 pre-attach + 2 announced
  fleet.detach();
}

// --- Batched classification bit-identity -----------------------------------

TEST_F(FleetIngestTest, BatchPathMatchesPerSnapshotClassify) {
  std::vector<metrics::Snapshot> mixed;
  for (std::size_t c = 0; c < core::kClassCount; ++c) {
    const auto part = stream(core::class_from_index(c), 12,
                             static_cast<metrics::SimTime>(c) * 1000);
    mixed.insert(mixed.end(), part.begin(), part.end());
  }

  for (const bool detailed : {false, true}) {
    core::SnapshotBatch batch;
    pipeline_->begin_snapshot_batch(batch, mixed.size(), detailed);
    auto scratch = pipeline_->acquire_scratch();
    for (std::size_t i = 0; i < mixed.size(); ++i)
      pipeline_->classify_snapshot_into(mixed[i], batch, i, *scratch);

    for (std::size_t i = 0; i < mixed.size(); ++i) {
      EXPECT_EQ(batch.label(i), pipeline_->classify(mixed[i])) << "i=" << i;
      if (!detailed) continue;
      const core::SnapshotClassification expect =
          pipeline_->classify_detailed(mixed[i]);
      EXPECT_EQ(batch.detail(i).label, expect.label) << "i=" << i;
      EXPECT_EQ(batch.detail(i).confidence, expect.confidence) << "i=" << i;
      EXPECT_EQ(batch.detail(i).vote_margin, expect.vote_margin) << "i=" << i;
      EXPECT_EQ(batch.detail(i).novelty, expect.novelty) << "i=" << i;
      EXPECT_EQ(batch.detail(i).projected, expect.projected) << "i=" << i;
    }
  }
}

// --- The headline guard: zero allocations per warmed cycle -----------------

TEST_F(FleetIngestTest, SteadyStatePushDrainCycleIsAllocationFree) {
  core::OnlineOptions options;
  engine::FleetStream fleet(*pipeline_, options);
  monitor::MetricBus bus;
  fleet.attach(bus);

  // Stable per-node streams: every node keeps announcing its own class,
  // so windows fill, coverage settles, and no change events fire inside
  // the measured region. The snapshots are pre-generated so the region
  // contains *only* the announce→push→drain→ingest path.
  const std::size_t kNodes = core::kClassCount;
  const std::size_t kPerCycle = 4;
  std::vector<metrics::Snapshot> cycle;
  for (std::size_t s = 0; s < kPerCycle; ++s)
    for (std::size_t node = 0; node < kNodes; ++node)
      cycle.push_back(grid_snapshot(core::class_from_index(node),
                                    1000 + node * kPerCycle + s, 0,
                                    "10.0." + std::to_string(node) + ".1"));
  metrics::SimTime t = 0;
  const auto run_cycle = [&] {
    for (std::size_t s = 0; s < kPerCycle; ++s) {
      for (std::size_t node = 0; node < kNodes; ++node) {
        metrics::Snapshot& snapshot = cycle[s * kNodes + node];
        snapshot.time = t;
        bus.announce(snapshot);
      }
      t += options.sampling_interval_s;
    }
    return fleet.drain();
  };

  // Warmup: rings, batch, scratch pool, per-node windows, vote scratch,
  // and every metrics singleton reach their steady footprint.
  const std::size_t warm_cycles =
      options.window / kPerCycle + 4;  // windows must fill AND start evicting
  for (std::size_t i = 0; i < warm_cycles; ++i)
    ASSERT_EQ(run_cycle(), kNodes * kPerCycle);

  const std::uint64_t ring_grows_before = fleet.ring_grows();
  const std::uint64_t before = allocations();
  std::size_t drained = 0;
  for (int i = 0; i < 10; ++i) drained += run_cycle();
  const std::uint64_t after = allocations();

  EXPECT_EQ(drained, 10u * kNodes * kPerCycle);
  EXPECT_EQ(after - before, 0u)
      << "steady-state ingest allocated " << (after - before) << " times over "
      << drained << " snapshots";
  EXPECT_EQ(fleet.ring_grows(), ring_grows_before);
  fleet.detach();
}

}  // namespace
}  // namespace appclass
