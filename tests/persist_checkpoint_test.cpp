// Checkpoint format and storage: exact round trip of the online state
// image, checksum-footer corruption detection, atomic write + retention,
// and the corrupt-newest-falls-back-to-older loading rule.
#include "persist/checkpoint.hpp"

#include <unistd.h>

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>

namespace appclass::persist {
namespace {

CheckpointData sample() {
  CheckpointData data;
  data.wal_next = 1234;
  data.options = {.sampling_interval_s = 2,
                  .window = 9,
                  .stability = 4,
                  .min_coverage = 0.625};
  data.online.classified = 77;
  data.online.abstained = 3;
  core::OnlineNodeImage a;
  a.node_ip = "10.0.0.1";
  a.window = {{0, core::ApplicationClass::kCpu},
              {2, core::ApplicationClass::kCpu},
              {4, core::ApplicationClass::kIo}};
  a.stable_class = core::ApplicationClass::kCpu;
  a.candidate = core::ApplicationClass::kIo;
  a.candidate_streak = 1;
  a.first_time = 0;
  a.coverage = 0.875;
  core::OnlineNodeImage b;
  b.node_ip = "10.0.0.2";
  b.stable_class = std::nullopt;  // never debounced to a stable class
  b.candidate = core::ApplicationClass::kIdle;
  b.first_time = 40;
  b.coverage = 1.0;
  data.online.nodes = {a, b};
  data.appdb_csv = "name,class\npostmark,io\n";  // embedded newlines
  return data;
}

void expect_equal(const CheckpointData& x, const CheckpointData& y) {
  // The encoder is deterministic, so byte equality of re-encodings is the
  // strongest practical "every field survived" check.
  EXPECT_EQ(encode_checkpoint(x), encode_checkpoint(y));
}

class CheckpointDirTest : public ::testing::Test {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/appclass_ckpt_XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    dir_ = std::string(tmpl) + "/checkpoints";
  }

  void TearDown() override {
    std::filesystem::remove_all(std::filesystem::path(dir_).parent_path());
  }

  std::string dir_;
};

TEST(Checkpoint, EncodeDecodeRoundTrip) {
  const CheckpointData original = sample();
  const CheckpointData decoded = decode_checkpoint(encode_checkpoint(original));
  EXPECT_EQ(decoded.wal_next, 1234u);
  EXPECT_EQ(decoded.options.window, 9u);
  EXPECT_EQ(decoded.online.nodes.size(), 2u);
  EXPECT_EQ(decoded.online.nodes[0].window.size(), 3u);
  EXPECT_FALSE(decoded.online.nodes[1].stable_class.has_value());
  EXPECT_EQ(decoded.appdb_csv, original.appdb_csv);
  expect_equal(original, decoded);
}

TEST(Checkpoint, ChecksumCatchesBitFlip) {
  std::string text = encode_checkpoint(sample());
  text[text.size() / 3] ^= 0x01;
  EXPECT_THROW(
      {
        try {
          decode_checkpoint(text);
        } catch (const std::runtime_error& e) {
          EXPECT_NE(std::string(e.what()).find("checksum mismatch"),
                    std::string::npos);
          throw;
        }
      },
      std::runtime_error);
}

TEST(Checkpoint, TruncationIsDetected) {
  std::string text = encode_checkpoint(sample());
  text.resize(text.size() / 2);
  EXPECT_THROW(decode_checkpoint(text), std::runtime_error);
}

TEST(Checkpoint, EmptyAndForeignFilesAreRejected) {
  EXPECT_THROW(decode_checkpoint(""), std::runtime_error);
  EXPECT_THROW(decode_checkpoint("definitely not a checkpoint\n"),
               std::runtime_error);
}

TEST_F(CheckpointDirTest, WriteLoadRoundTrip) {
  const std::string path = write_checkpoint(dir_, sample());
  EXPECT_NE(path.find("checkpoint-"), std::string::npos);
  // No temp leftovers: the write is rename-atomic.
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  const auto loaded = load_latest_checkpoint(dir_);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->corrupt_skipped, 0u);
  expect_equal(loaded->data, sample());
}

TEST_F(CheckpointDirTest, RetainsOnlyNewestKeep) {
  CheckpointData data = sample();
  for (std::uint64_t horizon : {10u, 20u, 30u, 40u}) {
    data.wal_next = horizon;
    write_checkpoint(dir_, data, /*keep=*/2);
  }
  const auto files = checkpoint_files(dir_);
  ASSERT_EQ(files.size(), 2u);
  const auto loaded = load_latest_checkpoint(dir_);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->data.wal_next, 40u);
}

TEST_F(CheckpointDirTest, CorruptNewestFallsBackToOlder) {
  CheckpointData data = sample();
  data.wal_next = 10;
  write_checkpoint(dir_, data);
  data.wal_next = 20;
  const std::string newest = write_checkpoint(dir_, data);
  {
    // Simulate a torn checkpoint write that somehow landed (e.g. a
    // pre-atomic-write file from an older build): flip one byte.
    std::fstream f(newest,
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(40);
    f.put('#');
  }
  const auto loaded = load_latest_checkpoint(dir_);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->data.wal_next, 10u);
  EXPECT_EQ(loaded->corrupt_skipped, 1u);
}

TEST_F(CheckpointDirTest, EmptyDirectoryYieldsNullopt) {
  EXPECT_FALSE(load_latest_checkpoint(dir_).has_value());
  EXPECT_FALSE(load_latest_checkpoint(dir_ + "/missing").has_value());
}

}  // namespace
}  // namespace appclass::persist
