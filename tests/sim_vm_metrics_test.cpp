// Detailed checks of the per-VM metric accounting in Vm::finalize_tick.
#include <gtest/gtest.h>

#include "sim/testbed.hpp"
#include "workloads/catalog.hpp"
#include "workloads/phased_app.hpp"

namespace appclass::sim {
namespace {

using metrics::MetricId;
using metrics::Snapshot;

/// Runs `app` on VM1 of a minimal testbed, collecting VM1's snapshots.
std::vector<Snapshot> observe(std::unique_ptr<WorkloadModel> app,
                              SimTime ticks, double ram_mb = 256.0) {
  TestbedOptions opts;
  opts.seed = 77;
  opts.four_vms = false;
  opts.vm1_ram_mb = ram_mb;
  Testbed tb = make_testbed(opts);
  std::vector<Snapshot> out;
  tb.engine->set_snapshot_sink([&](VmId vm, const Snapshot& s) {
    if (vm == tb.vm1) out.push_back(s);
  });
  if (app) tb.engine->submit(tb.vm1, std::move(app));
  tb.engine->run_for(ticks);
  return out;
}

TEST(VmMetrics, ConstantsAreStable) {
  const auto snaps = observe(nullptr, 20);
  for (const auto& s : snaps) {
    EXPECT_DOUBLE_EQ(s.get(MetricId::kCpuNum), 1.0);  // GSX uniprocessor
    EXPECT_DOUBLE_EQ(s.get(MetricId::kCpuSpeed), 1800.0);
    EXPECT_DOUBLE_EQ(s.get(MetricId::kMemTotal), 256.0 * 1024.0);
    EXPECT_DOUBLE_EQ(s.get(MetricId::kSwapTotal), 512.0 * 1024.0);
    EXPECT_DOUBLE_EQ(s.get(MetricId::kMtu), 1500.0);
  }
}

TEST(VmMetrics, IdleVmShowsOnlyDaemonNoise) {
  const auto snaps = observe(nullptr, 50);
  for (const auto& s : snaps) {
    EXPECT_LT(s.get(MetricId::kCpuUser) + s.get(MetricId::kCpuSystem), 5.0);
    EXPECT_GT(s.get(MetricId::kCpuIdle), 95.0);
    EXPECT_DOUBLE_EQ(s.get(MetricId::kSwapIn), 0.0);
    EXPECT_LT(s.get(MetricId::kBytesIn), 5000.0);
  }
}

TEST(VmMetrics, AidleTracksLongRunIdleShare) {
  // 50 idle ticks then a CPU burner: cpu_aidle (idle since boot) decays
  // slowly while cpu_idle collapses immediately.
  TestbedOptions opts;
  opts.seed = 7;
  opts.four_vms = false;
  Testbed tb = make_testbed(opts);
  std::vector<Snapshot> snaps;
  tb.engine->set_snapshot_sink([&](VmId vm, const Snapshot& s) {
    if (vm == tb.vm1) snaps.push_back(s);
  });
  tb.engine->run_for(50);
  tb.engine->submit(tb.vm1, workloads::make_ch3d(100.0));
  tb.engine->run_for(50);
  const auto& last = snaps.back();
  EXPECT_LT(last.get(MetricId::kCpuIdle), 10.0);
  EXPECT_GT(last.get(MetricId::kCpuAidle), 40.0);
  EXPECT_LT(last.get(MetricId::kCpuAidle), 70.0);
}

TEST(VmMetrics, PacketsScaleWithBytes) {
  const auto snaps = observe(workloads::make_autobench(), 60);
  const auto& s = snaps.back();
  EXPECT_NEAR(s.get(MetricId::kPktsOut),
              s.get(MetricId::kBytesOut) / 1200.0, 1.0);
}

TEST(VmMetrics, DiskFillsUnderSustainedWrites) {
  workloads::Phase w;
  w.work_units = 500.0;
  w.nominal_rate = 1.0;
  w.write_blocks_per_unit = 9000.0;
  auto app = std::make_unique<workloads::PhasedApp>(
      "writer", std::vector<workloads::Phase>{w});
  const auto snaps = observe(std::move(app), 400);
  EXPECT_GT(snaps.back().get(MetricId::kPartMaxUsed),
            snaps.front().get(MetricId::kPartMaxUsed));
  EXPECT_LT(snaps.back().get(MetricId::kPartMaxUsed), 95.0);
  EXPECT_NEAR(snaps.back().get(MetricId::kDiskTotal) -
                  snaps.back().get(MetricId::kDiskFree),
              snaps.back().get(MetricId::kPartMaxUsed) / 100.0 *
                  snaps.back().get(MetricId::kDiskTotal),
              1e-6);
}

TEST(VmMetrics, PageCacheShrinksWhenWorkingSetGrows) {
  // An idle VM's leftover RAM is all page cache; a 200 MB resident working
  // set evicts most of it.
  const auto idle = observe(nullptr, 30);
  const auto loaded = observe(workloads::make_stream(200.0), 30);
  EXPECT_LT(loaded.back().get(MetricId::kMemCached),
            0.3 * idle.back().get(MetricId::kMemCached));
}

TEST(VmMetrics, SwapFreeShrinksUnderPaging) {
  const auto snaps = observe(workloads::make_pagebench(384.0), 120);
  EXPECT_LT(snaps.back().get(MetricId::kSwapFree),
            snaps.front().get(MetricId::kSwapFree));
  EXPECT_GT(snaps.back().get(MetricId::kSwapFree), 0.0);
}

TEST(VmMetrics, SwapTrafficCountsAsBlockIo) {
  const auto snaps = observe(workloads::make_pagebench(384.0), 120);
  const auto& s = snaps.back();
  EXPECT_GE(s.get(MetricId::kIoBi), s.get(MetricId::kSwapIn));
  EXPECT_GE(s.get(MetricId::kIoBo), s.get(MetricId::kSwapOut));
}

TEST(VmMetrics, ProcCountsIncludeRunningInstances) {
  const auto snaps = observe(workloads::make_ch3d(200.0), 50);
  const auto& s = snaps.back();
  EXPECT_GE(s.get(MetricId::kProcRun), 1.0);
  EXPECT_GT(s.get(MetricId::kProcTotal), 50.0);
  EXPECT_LT(s.get(MetricId::kProcTotal), 80.0);
}

}  // namespace
}  // namespace appclass::sim
