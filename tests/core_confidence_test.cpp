#include <gtest/gtest.h>

#include "core_test_util.hpp"

namespace appclass::core {
namespace {

TEST(Confidence, UnanimousNeighbourhoodScoresOne) {
  linalg::Matrix points{{0, 0}, {0.1, 0}, {-0.1, 0}, {10, 0}, {10.1, 0},
                        {9.9, 0}};
  std::vector<ApplicationClass> labels = {
      ApplicationClass::kCpu, ApplicationClass::kCpu, ApplicationClass::kCpu,
      ApplicationClass::kIo,  ApplicationClass::kIo,  ApplicationClass::kIo};
  KnnClassifier knn;
  knn.train(points, labels);
  const auto deep = knn.query(std::vector<double>{0, 0},
                              QueryOptions{.vote_shares = true});
  EXPECT_EQ(deep.labels[0], ApplicationClass::kCpu);
  EXPECT_DOUBLE_EQ(deep.vote_shares[0], 1.0);
}

TEST(Confidence, BoundaryPointScoresLower) {
  linalg::Matrix points{{0, 0}, {0.1, 0}, {10, 0}, {10.1, 0}};
  std::vector<ApplicationClass> labels = {
      ApplicationClass::kCpu, ApplicationClass::kCpu, ApplicationClass::kIo,
      ApplicationClass::kIo};
  KnnClassifier knn;
  knn.train(points, labels);
  // k=3 near the midpoint: 2 of one class, 1 of the other -> 2/3.
  const auto mid = knn.query(std::vector<double>{4.9, 0},
                             QueryOptions{.vote_shares = true});
  EXPECT_DOUBLE_EQ(mid.vote_shares[0], 2.0 / 3.0);
}

TEST(Confidence, ConfidenceMatchesPlainClassify) {
  KnnClassifier knn;
  linalg::Rng rng(4);
  linalg::Matrix points(30, 2);
  std::vector<ApplicationClass> labels;
  for (std::size_t i = 0; i < 30; ++i) {
    points(i, 0) = rng.uniform(-5.0, 5.0);
    points(i, 1) = rng.uniform(-5.0, 5.0);
    labels.push_back(i % 2 == 0 ? ApplicationClass::kCpu
                                : ApplicationClass::kNetwork);
  }
  knn.train(points, labels);
  for (int t = 0; t < 40; ++t) {
    const std::vector<double> q = {rng.uniform(-5.0, 5.0),
                                   rng.uniform(-5.0, 5.0)};
    const auto result = knn.query(q, QueryOptions{.vote_shares = true});
    EXPECT_EQ(result.labels[0], knn.query(q).labels[0]);
  }
}

TEST(Confidence, PipelineReportsPerSnapshotConfidence) {
  ClassificationPipeline pipeline;
  pipeline.train(testing::synthetic_training());
  const auto pool = testing::synthetic_pool(ApplicationClass::kIo, 20, 77);
  const auto result = pipeline.classify(pool);
  ASSERT_EQ(result.confidences.size(), 20u);
  for (const double c : result.confidences) {
    EXPECT_GT(c, 0.0);
    EXPECT_LE(c, 1.0);
  }
  // Clean synthetic clusters: nearly every snapshot unanimous.
  EXPECT_GT(result.mean_confidence(), 0.9);
}

TEST(Confidence, AmbiguousPoolScoresLowerThanCleanPool) {
  ClassificationPipeline pipeline;
  pipeline.train(testing::synthetic_training());

  const auto clean = testing::synthetic_pool(ApplicationClass::kCpu, 30, 5);
  // Points halfway between the io and memory prototypes are ambiguous.
  metrics::DataPool murky("10.0.0.1");
  linalg::Rng rng(6);
  for (int i = 0; i < 30; ++i) {
    auto a = testing::synthetic_snapshot(ApplicationClass::kIo, rng, 5 * i);
    const auto b =
        testing::synthetic_snapshot(ApplicationClass::kMemory, rng, 5 * i);
    for (std::size_t m = 0; m < metrics::kMetricCount; ++m)
      a.values[m] = 0.5 * (a.values[m] + b.values[m]);
    murky.add(a);
  }
  EXPECT_GT(pipeline.classify(clean).mean_confidence(),
            pipeline.classify(murky).mean_confidence());
}

}  // namespace
}  // namespace appclass::core
