// Process supervision: restart-until-healthy, restart-ordinal propagation
// through the environment, crash-loop detection, and clean-exit
// passthrough — all with real fork()ed workers.
#include "persist/supervisor.hpp"

#include <unistd.h>

#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>

namespace appclass::persist {
namespace {

/// Fast knobs: backoffs in the milliseconds, loop window generous enough
/// that every scripted failure lands inside it.
SupervisorOptions fast_options() {
  SupervisorOptions options;
  options.backoff_initial_s = 0.01;
  options.backoff_max_s = 0.05;
  options.crash_loop_threshold = 3;
  options.crash_loop_window_s = 30.0;
  options.stable_s = 60.0;  // nothing here runs long enough to "stabilize"
  options.term_grace_s = 5.0;
  return options;
}

class SupervisorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/appclass_super_XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    dir_ = tmpl;
  }

  void TearDown() override { std::filesystem::remove_all(dir_); }

  /// Scratch file the forked workers communicate through (the worker
  /// lambda runs in a child process — memory writes do not come back).
  std::string path(const std::string& name) const { return dir_ + "/" + name; }

  int count_lines(const std::string& name) const {
    std::ifstream in(path(name));
    int lines = 0;
    std::string line;
    while (std::getline(in, line)) ++lines;
    return lines;
  }

  std::string dir_;
};

TEST_F(SupervisorTest, CleanExitEndsSupervisionWithoutRestart) {
  Supervisor supervisor(fast_options());
  const SupervisorResult result = supervisor.run([] { return 0; });
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_EQ(result.restarts, 0u);
  EXPECT_FALSE(result.crash_loop);
  EXPECT_FALSE(result.terminated);
}

TEST_F(SupervisorTest, RestartsCrashingWorkerUntilItSucceeds) {
  const std::string attempts = path("attempts");
  Supervisor supervisor(fast_options());
  const SupervisorResult result = supervisor.run([&] {
    // Append one line per attempt; fail the first two runs, then succeed.
    std::ofstream(attempts, std::ios::app) << "run\n";
    std::ifstream in(attempts);
    int runs = 0;
    std::string line;
    while (std::getline(in, line)) ++runs;
    return runs < 3 ? 7 : 0;
  });
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_EQ(result.restarts, 2u);
  EXPECT_FALSE(result.crash_loop);
  EXPECT_EQ(count_lines("attempts"), 3);
}

TEST_F(SupervisorTest, RestartOrdinalReachesWorkerEnvironment) {
  const std::string ordinals = path("ordinals");
  Supervisor supervisor(fast_options());
  supervisor.run([&] {
    const char* env = std::getenv(kRestartsEnvVar);
    std::ofstream(ordinals, std::ios::app)
        << (env != nullptr ? env : "unset") << "\n";
    return count_lines("ordinals") < 2 ? 9 : 0;
  });
  std::ifstream in(ordinals);
  std::string first, second;
  std::getline(in, first);
  std::getline(in, second);
  EXPECT_EQ(first, "0");
  EXPECT_EQ(second, "1");
}

TEST_F(SupervisorTest, WorkerDeathBySignalIsRestartedToo) {
  const std::string attempts = path("attempts");
  Supervisor supervisor(fast_options());
  const SupervisorResult result = supervisor.run([&] {
    std::ofstream(attempts, std::ios::app) << "run\n";
    if (count_lines("attempts") < 2) {
      std::raise(SIGKILL);  // the chaos case: the worker just vanishes
    }
    return 0;
  });
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_EQ(result.restarts, 1u);
  EXPECT_EQ(count_lines("attempts"), 2);
}

TEST_F(SupervisorTest, PersistentCrashTripsTheLoopDetector) {
  Supervisor supervisor(fast_options());
  const SupervisorResult result = supervisor.run([] { return 5; });
  EXPECT_TRUE(result.crash_loop);
  EXPECT_EQ(result.exit_code, 5);
  // threshold failures, the first of which was the initial run.
  EXPECT_EQ(result.restarts, 2u);
}

TEST_F(SupervisorTest, SigtermDuringRunEndsSupervisionAsTerminated) {
  // The worker loops "forever"; a SIGTERM raised at the supervisor must
  // be forwarded (default disposition kills the child) and reported as a
  // termination, not a crash.
  SupervisorOptions options = fast_options();
  std::thread killer([] {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    ::kill(::getpid(), SIGTERM);
  });
  Supervisor supervisor(options);
  const SupervisorResult result = supervisor.run([] {
    for (;;) std::this_thread::sleep_for(std::chrono::milliseconds(10));
    return 0;
  });
  killer.join();
  EXPECT_TRUE(result.terminated);
  EXPECT_FALSE(result.crash_loop);
  EXPECT_EQ(result.exit_code, 128 + SIGTERM);
}

}  // namespace
}  // namespace appclass::persist
