// Contract-violation death tests: the APPCLASS_EXPECTS guards must abort
// with a diagnostic instead of silently corrupting state.
#include <gtest/gtest.h>

#include "core/knn.hpp"
#include "core/pca.hpp"
#include "core/preprocess.hpp"
#include "linalg/matrix.hpp"
#include "sim/engine.hpp"
#include "workloads/phased_app.hpp"

namespace appclass {
namespace {

TEST(Contracts, MatrixOutOfBoundsAborts) {
  const linalg::Matrix m(2, 2);
  EXPECT_DEATH((void)m.at(2, 0), "precondition");
  EXPECT_DEATH((void)m.at(0, 2), "precondition");
}

TEST(Contracts, MatrixShapeMismatchAborts) {
  const linalg::Matrix a(2, 3);
  const linalg::Matrix b(2, 3);
  EXPECT_DEATH((void)a.multiply(b), "precondition");
}

TEST(Contracts, KnnRequiresOddK) {
  EXPECT_DEATH(core::KnnClassifier(core::KnnOptions{.k = 2}), "precondition");
}

TEST(Contracts, KnnTrainRequiresMatchingLabels) {
  core::KnnClassifier knn;
  linalg::Matrix points(4, 2);
  std::vector<core::ApplicationClass> labels(3, core::ApplicationClass::kCpu);
  EXPECT_DEATH(knn.train(std::move(points), std::move(labels)),
               "precondition");
}

TEST(Contracts, UntrainedKnnQueryAborts) {
  const core::KnnClassifier knn;
  EXPECT_DEATH((void)knn.query(std::vector<double>{0.0}), "precondition");
}

TEST(Contracts, UnfittedPreprocessorTransformAborts) {
  const core::Preprocessor pre;
  EXPECT_DEATH((void)pre.stats(), "precondition");
}

TEST(Contracts, UnfittedPcaAborts) {
  const core::Pca pca;
  EXPECT_DEATH((void)pca.components(), "precondition");
}

TEST(Contracts, PcaRequiresTwoSamples) {
  core::Pca pca;
  const linalg::Matrix one_row(1, 3);
  EXPECT_DEATH(pca.fit(one_row), "precondition");
}

TEST(Contracts, EngineRejectsBadIds) {
  sim::Engine engine(1);
  EXPECT_DEATH((void)engine.instance(0), "precondition");
  EXPECT_DEATH((void)engine.add_vm(0, sim::VmSpec{}), "precondition");
}

TEST(Contracts, EngineRejectsNullModel) {
  sim::Engine engine(1);
  const auto host = engine.add_host(sim::HostSpec{});
  const auto vm = engine.add_vm(host, sim::VmSpec{.name = "v", .ip = "i"});
  EXPECT_DEATH((void)engine.submit(vm, nullptr), "precondition");
}

TEST(Contracts, PhasedAppRejectsEmptyPhaseList) {
  EXPECT_DEATH(workloads::PhasedApp("x", {}), "precondition");
}

TEST(Contracts, PhasedAppRejectsNonPositiveWork) {
  workloads::Phase p;
  p.work_units = 0.0;
  EXPECT_DEATH(workloads::PhasedApp("x", {p}), "precondition");
}

}  // namespace
}  // namespace appclass
