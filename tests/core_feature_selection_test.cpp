#include "core/feature_selection.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "core_test_util.hpp"

namespace appclass::core {
namespace {

using metrics::MetricId;

LabeledSnapshots synthetic_data(std::size_t per_class = 40) {
  return flatten(testing::synthetic_training(per_class));
}

bool contains(const std::vector<MetricId>& v, MetricId id) {
  return std::find(v.begin(), v.end(), id) != v.end();
}

TEST(FeatureSelection, RankingIsSortedDescending) {
  const auto ranked = rank_features(synthetic_data());
  EXPECT_EQ(ranked.size(), metrics::kMetricCount);
  for (std::size_t i = 0; i + 1 < ranked.size(); ++i)
    EXPECT_GE(ranked[i].relevance, ranked[i + 1].relevance);
}

TEST(FeatureSelection, DiscriminativeMetricsRankAboveConstantOnes) {
  const auto ranked = rank_features(synthetic_data());
  double cpu_user_rel = -1.0, mtu_rel = -1.0;
  for (const auto& fs : ranked) {
    if (fs.metric == MetricId::kCpuUser) cpu_user_rel = fs.relevance;
    if (fs.metric == MetricId::kMtu) mtu_rel = fs.relevance;
  }
  EXPECT_GT(cpu_user_rel, 100.0);  // strongly class-separating
  EXPECT_DOUBLE_EQ(mtu_rel, 0.0);  // constant in the synthetic data
}

TEST(FeatureSelection, RedundancyOfPerfectlyCorrelatedPair) {
  // In the synthetic memory class, swap_in == io_bi in distribution;
  // test a literally duplicated pair instead for an exact answer.
  LabeledSnapshots data = synthetic_data();
  for (auto& s : data.snapshots)
    s.set(MetricId::kPktsIn, 2.0 * s.get(MetricId::kBytesIn) + 1.0);
  EXPECT_NEAR(
      feature_redundancy(data, MetricId::kBytesIn, MetricId::kPktsIn), 1.0,
      1e-9);
}

TEST(FeatureSelection, SelectsRequestedCount) {
  // Without the redundancy filter the greedy pass fills the quota exactly.
  const auto selected = select_features(
      synthetic_data(), {.target_count = 6, .max_redundancy = 1.01});
  EXPECT_EQ(selected.size(), 6u);
}

TEST(FeatureSelection, RedundancyFilterMayReturnFewer) {
  // The synthetic data has 8 informative metrics in 4 tightly correlated
  // pairs; with a strict filter, fewer than the target survive.
  const auto selected = select_features(
      synthetic_data(), {.target_count = 8, .max_redundancy = 0.95});
  EXPECT_GE(selected.size(), 3u);
  EXPECT_LT(selected.size(), 8u);
}

TEST(FeatureSelection, SelectionCoversEveryClassSignal) {
  // The auto-selected set must contain at least one CPU, one IO/paging,
  // and one network metric, or the classifier couldn't separate classes.
  const auto selected = select_features(synthetic_data(),
                                        {.target_count = 8});
  const bool has_cpu = contains(selected, MetricId::kCpuUser) ||
                       contains(selected, MetricId::kCpuSystem) ||
                       contains(selected, MetricId::kCpuIdle);
  const bool has_io = contains(selected, MetricId::kIoBi) ||
                      contains(selected, MetricId::kIoBo) ||
                      contains(selected, MetricId::kSwapIn) ||
                      contains(selected, MetricId::kSwapOut);
  const bool has_net = contains(selected, MetricId::kBytesIn) ||
                       contains(selected, MetricId::kBytesOut) ||
                       contains(selected, MetricId::kPktsIn) ||
                       contains(selected, MetricId::kPktsOut);
  EXPECT_TRUE(has_cpu);
  EXPECT_TRUE(has_io);
  EXPECT_TRUE(has_net);
}

TEST(FeatureSelection, RedundancyFilterDropsDuplicates) {
  LabeledSnapshots data = synthetic_data();
  // Make pkts_in an exact copy of bytes_in (a perfectly redundant metric).
  for (auto& s : data.snapshots)
    s.set(MetricId::kPktsIn, s.get(MetricId::kBytesIn));
  const auto strict =
      select_features(data, {.target_count = 33, .max_redundancy = 0.99});
  EXPECT_FALSE(contains(strict, MetricId::kBytesIn) &&
               contains(strict, MetricId::kPktsIn));
  const auto lax =
      select_features(data, {.target_count = 33, .max_redundancy = 1.01});
  EXPECT_TRUE(contains(lax, MetricId::kBytesIn) &&
              contains(lax, MetricId::kPktsIn));
}

TEST(FeatureSelection, AutoSelectedFeaturesTrainAnAccurateClassifier) {
  // The full future-work loop: auto-select -> train -> evaluate.
  const auto pools = testing::synthetic_training();
  const auto selected = select_features(pools, {.target_count = 8});
  PipelineOptions options;
  options.selected_metrics = selected;
  const auto cm = cross_validate(pools, options, 4, 11);
  EXPECT_GT(cm.accuracy(), 0.9);
}

TEST(FeatureSelection, DeterministicForSameData) {
  const auto a = select_features(synthetic_data());
  const auto b = select_features(synthetic_data());
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace appclass::core
