#include "core/preprocess.hpp"

#include <gtest/gtest.h>

#include "core_test_util.hpp"

namespace appclass::core {
namespace {

TEST(Preprocessor, DefaultsToExpertEight) {
  const Preprocessor pre;
  EXPECT_EQ(pre.dimension(), 8u);
  EXPECT_EQ(pre.selected()[0], metrics::MetricId::kCpuSystem);
}

TEST(Preprocessor, CustomSelection) {
  const Preprocessor pre({metrics::MetricId::kLoadOne});
  EXPECT_EQ(pre.dimension(), 1u);
}

TEST(Preprocessor, ExtractShapesMxP) {
  const auto pool = testing::synthetic_pool(ApplicationClass::kIo, 10, 1);
  const Preprocessor pre;
  const auto m = pre.extract(pool);
  EXPECT_EQ(m.rows(), 10u);
  EXPECT_EQ(m.cols(), 8u);
}

TEST(Preprocessor, ExtractPullsCorrectMetrics) {
  metrics::Snapshot s;
  s.set(metrics::MetricId::kCpuSystem, 11.0);
  s.set(metrics::MetricId::kSwapOut, 22.0);
  s.set(metrics::MetricId::kLoadOne, 99.0);  // not in the expert list
  metrics::DataPool pool("n");
  pool.add(s);
  const Preprocessor pre;
  const auto m = pre.extract(pool);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 11.0);  // cpu_system first
  EXPECT_DOUBLE_EQ(m.at(0, 7), 22.0);  // swap_out last
}

TEST(Preprocessor, FitThenTransformNormalizesTrainingData) {
  const auto pool = testing::synthetic_pool(ApplicationClass::kNetwork, 50, 2);
  Preprocessor pre;
  pre.fit(pool);
  const auto n = pre.transform(pool);
  const auto stats = linalg::column_stats(n);
  for (std::size_t c = 0; c < n.cols(); ++c) {
    EXPECT_NEAR(stats.mean[c], 0.0, 1e-9);
    // Constant columns normalize to 0 (stddev floor), others to 1.
    EXPECT_LE(stats.stddev[c], 1.0 + 1e-9);
  }
}

TEST(Preprocessor, FittedFlagTracksState) {
  Preprocessor pre;
  EXPECT_FALSE(pre.fitted());
  pre.fit(testing::synthetic_pool(ApplicationClass::kIdle, 5, 3));
  EXPECT_TRUE(pre.fitted());
  EXPECT_EQ(pre.stats().dims(), 8u);
}

TEST(Preprocessor, TransformReplaysTrainingStatsOnTestData) {
  const auto train = testing::synthetic_pool(ApplicationClass::kCpu, 50, 4);
  Preprocessor pre;
  pre.fit(train);
  // A test pool from a different class is normalized with the SAME stats:
  // its transformed mean must NOT be zero.
  const auto test = testing::synthetic_pool(ApplicationClass::kIo, 50, 5);
  const auto n = pre.transform(test);
  const auto stats = linalg::column_stats(n);
  double max_mean = 0.0;
  for (double m : stats.mean) max_mean = std::max(max_mean, std::abs(m));
  EXPECT_GT(max_mean, 1.0);
}

TEST(Preprocessor, SnapshotTransformMatchesMatrixPath) {
  const auto pool = testing::synthetic_pool(ApplicationClass::kMemory, 20, 6);
  Preprocessor pre;
  pre.fit(pool);
  const auto matrix_path = pre.transform(pool);
  const auto row = pre.transform(pool[3]);
  for (std::size_t c = 0; c < row.size(); ++c)
    EXPECT_DOUBLE_EQ(row[c], matrix_path.at(3, c));
}

}  // namespace
}  // namespace appclass::core
