#include "monitor/fault_injection.hpp"

#include <gtest/gtest.h>

#include "core/pipeline.hpp"
#include "core_test_util.hpp"
#include "monitor/profiler.hpp"

namespace appclass::monitor {
namespace {

metrics::Snapshot tick_snapshot(metrics::SimTime t,
                                const std::string& ip = "n") {
  metrics::Snapshot s;
  s.time = t;
  s.node_ip = ip;
  return s;
}

TEST(FaultyChannel, NoFaultsRelaysEverything) {
  MetricBus source, target;
  int received = 0;
  target.subscribe([&](const metrics::Snapshot&) { ++received; });
  FaultyChannel channel(source, target, FaultOptions{});
  for (int t = 0; t < 50; ++t) source.announce(tick_snapshot(t));
  EXPECT_EQ(received, 50);
  EXPECT_EQ(channel.dropped(), 0u);
}

TEST(FaultyChannel, DropsApproximatelyAtConfiguredRate) {
  MetricBus source, target;
  FaultyChannel channel(source, target, FaultOptions{.drop_probability = 0.3},
                        7);
  for (int t = 0; t < 5000; ++t) source.announce(tick_snapshot(t));
  const double rate = static_cast<double>(channel.dropped()) / 5000.0;
  EXPECT_NEAR(rate, 0.3, 0.03);
  EXPECT_EQ(channel.delivered() + channel.dropped(), 5000u);
}

TEST(FaultyChannel, BlackoutSilencesNodeForDuration) {
  MetricBus source, target;
  std::vector<metrics::SimTime> seen;
  target.subscribe(
      [&](const metrics::Snapshot& s) { seen.push_back(s.time); });
  FaultOptions options;
  options.blackout_probability = 1.0;  // first announcement triggers it
  options.blackout_s = 10;
  FaultyChannel channel(source, target, options, 3);
  for (int t = 0; t < 10; ++t) source.announce(tick_snapshot(t));
  EXPECT_TRUE(seen.empty());  // everything inside the blackout window
  EXPECT_EQ(channel.dropped(), 10u);
}

TEST(FaultyChannel, BlackoutEndsAndNodeRecovers) {
  MetricBus source, target;
  std::vector<metrics::SimTime> seen;
  target.subscribe(
      [&](const metrics::Snapshot& s) { seen.push_back(s.time); });
  FaultOptions options;
  options.blackout_probability = 1.0;
  options.blackout_s = 5;
  FaultyChannel channel(source, target, options, 3);
  // t=0 triggers blackout until t=5; at t=5 the node re-enters the pool,
  // but with probability 1 it immediately blacks out again -- so use two
  // separate nodes to observe recovery of one while the other is dark.
  source.announce(tick_snapshot(0, "a"));   // blackout a: [0,5)
  source.announce(tick_snapshot(3, "a"));   // dropped
  source.announce(tick_snapshot(6, "a"));   // triggers a new blackout
  EXPECT_EQ(channel.delivered(), 0u);
  EXPECT_EQ(channel.dropped(), 3u);
}

TEST(FaultyChannel, OtherNodesUnaffectedByBlackout) {
  MetricBus source, target;
  std::vector<std::string> seen;
  target.subscribe(
      [&](const metrics::Snapshot& s) { seen.push_back(s.node_ip); });
  FaultOptions options;
  options.blackout_probability = 0.0;
  options.drop_probability = 0.0;
  FaultyChannel channel(source, target, options, 3);
  source.announce(tick_snapshot(0, "a"));
  source.announce(tick_snapshot(0, "b"));
  EXPECT_EQ(seen.size(), 2u);
}

TEST(FaultyChannel, DetachesOnDestruction) {
  MetricBus source, target;
  int received = 0;
  target.subscribe([&](const metrics::Snapshot&) { ++received; });
  {
    FaultyChannel channel(source, target, FaultOptions{});
    source.announce(tick_snapshot(0));
  }
  source.announce(tick_snapshot(1));
  EXPECT_EQ(received, 1);
  EXPECT_EQ(source.listener_count(), 0u);
}

TEST(FaultyChannel, ClassifierCompositionRobustToLoss) {
  // The majority-vote composition barely moves when 30% of a run's
  // announcements are dropped: losses thin the sample, not the signal.
  core::ClassificationPipeline pipeline;
  pipeline.train(core::testing::synthetic_training());

  MetricBus source, target;
  std::vector<core::ApplicationClass> labels;
  target.subscribe([&](const metrics::Snapshot& s) {
    labels.push_back(pipeline.classify(s));
  });
  FaultyChannel channel(source, target,
                        FaultOptions{.drop_probability = 0.3}, 11);

  linalg::Rng rng(5);
  for (int t = 0; t < 300; ++t) {
    auto s = core::testing::synthetic_snapshot(
        t % 4 == 0 ? core::ApplicationClass::kIdle
                   : core::ApplicationClass::kIo,
        rng, t);
    source.announce(s);
  }
  ASSERT_GT(labels.size(), 150u);
  const core::ClassComposition comp(labels);
  EXPECT_EQ(comp.dominant(), core::ApplicationClass::kIo);
  EXPECT_NEAR(comp.fraction(core::ApplicationClass::kIo), 0.75, 0.08);
}

}  // namespace
}  // namespace appclass::monitor
