#include "monitor/fault_injection.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

#include "core/pipeline.hpp"
#include "core_test_util.hpp"
#include "monitor/profiler.hpp"

namespace appclass::monitor {
namespace {

metrics::Snapshot tick_snapshot(metrics::SimTime t,
                                const std::string& ip = "n") {
  metrics::Snapshot s;
  s.time = t;
  s.node_ip = ip;
  return s;
}

TEST(FaultyChannel, NoFaultsRelaysEverything) {
  MetricBus source, target;
  int received = 0;
  target.subscribe([&](const metrics::Snapshot&) { ++received; });
  FaultyChannel channel(source, target, FaultOptions{});
  for (int t = 0; t < 50; ++t) source.announce(tick_snapshot(t));
  EXPECT_EQ(received, 50);
  EXPECT_EQ(channel.dropped(), 0u);
}

TEST(FaultyChannel, DropsApproximatelyAtConfiguredRate) {
  MetricBus source, target;
  FaultyChannel channel(source, target, FaultOptions{.drop_probability = 0.3},
                        7);
  for (int t = 0; t < 5000; ++t) source.announce(tick_snapshot(t));
  const double rate = static_cast<double>(channel.dropped()) / 5000.0;
  EXPECT_NEAR(rate, 0.3, 0.03);
  EXPECT_EQ(channel.delivered() + channel.dropped(), 5000u);
}

TEST(FaultyChannel, BlackoutSilencesNodeForDuration) {
  MetricBus source, target;
  std::vector<metrics::SimTime> seen;
  target.subscribe(
      [&](const metrics::Snapshot& s) { seen.push_back(s.time); });
  FaultOptions options;
  options.blackout_probability = 1.0;  // first announcement triggers it
  options.blackout_s = 10;
  FaultyChannel channel(source, target, options, 3);
  for (int t = 0; t < 10; ++t) source.announce(tick_snapshot(t));
  EXPECT_TRUE(seen.empty());  // everything inside the blackout window
  EXPECT_EQ(channel.dropped(), 10u);
}

TEST(FaultyChannel, BlackoutEndsAndNodeRecovers) {
  MetricBus source, target;
  std::vector<metrics::SimTime> seen;
  target.subscribe(
      [&](const metrics::Snapshot& s) { seen.push_back(s.time); });
  FaultOptions options;
  options.blackout_probability = 1.0;
  options.blackout_s = 5;
  FaultyChannel channel(source, target, options, 3);
  // t=0 triggers blackout until t=5; at t=5 the node re-enters the pool,
  // but with probability 1 it immediately blacks out again -- so use two
  // separate nodes to observe recovery of one while the other is dark.
  source.announce(tick_snapshot(0, "a"));   // blackout a: [0,5)
  source.announce(tick_snapshot(3, "a"));   // dropped
  source.announce(tick_snapshot(6, "a"));   // triggers a new blackout
  EXPECT_EQ(channel.delivered(), 0u);
  EXPECT_EQ(channel.dropped(), 3u);
}

TEST(FaultyChannel, OtherNodesUnaffectedByBlackout) {
  MetricBus source, target;
  std::vector<std::string> seen;
  target.subscribe(
      [&](const metrics::Snapshot& s) { seen.push_back(s.node_ip); });
  FaultOptions options;
  options.blackout_probability = 0.0;
  options.drop_probability = 0.0;
  FaultyChannel channel(source, target, options, 3);
  source.announce(tick_snapshot(0, "a"));
  source.announce(tick_snapshot(0, "b"));
  EXPECT_EQ(seen.size(), 2u);
}

TEST(FaultyChannel, DetachesOnDestruction) {
  MetricBus source, target;
  int received = 0;
  target.subscribe([&](const metrics::Snapshot&) { ++received; });
  {
    FaultyChannel channel(source, target, FaultOptions{});
    source.announce(tick_snapshot(0));
  }
  source.announce(tick_snapshot(1));
  EXPECT_EQ(received, 1);
  EXPECT_EQ(source.listener_count(), 0u);
}

TEST(FaultyChannel, SameSeedYieldsIdenticalSequence) {
  // The fault channel is a deterministic function of (options, seed):
  // two channels fed the same stream must deliver byte-identical output.
  FaultOptions options;
  options.drop_probability = 0.2;
  options.blackout_probability = 0.01;
  options.blackout_s = 5;
  options.corruption_probability = 0.1;
  options.duplicate_probability = 0.1;
  options.replay_probability = 0.1;
  options.metric_dropout_probability = 0.02;

  auto run = [&](std::uint64_t seed) {
    MetricBus source, target;
    std::vector<metrics::Snapshot> out;
    target.subscribe(
        [&](const metrics::Snapshot& s) { out.push_back(s); });
    FaultyChannel channel(source, target, options, seed);
    linalg::Rng data_rng(42);
    for (int t = 0; t < 2000; ++t) {
      auto s = tick_snapshot(t, t % 2 == 0 ? "a" : "b");
      s.set(metrics::MetricId::kCpuUser, data_rng.uniform(0.0, 100.0));
      source.announce(s);
    }
    return out;
  };

  const auto first = run(123);
  const auto second = run(123);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].time, second[i].time);
    EXPECT_EQ(first[i].node_ip, second[i].node_ip);
    for (std::size_t m = 0; m < metrics::kMetricCount; ++m) {
      const double a = first[i].values[m], b = second[i].values[m];
      if (std::isnan(a))
        EXPECT_TRUE(std::isnan(b));
      else
        EXPECT_DOUBLE_EQ(a, b);
    }
  }
  // And a different seed produces a different sequence.
  const auto other = run(456);
  bool differs = other.size() != first.size();
  for (std::size_t i = 0; !differs && i < first.size(); ++i)
    differs = first[i].time != other[i].time;
  EXPECT_TRUE(differs);
}

TEST(FaultyChannel, CorruptionInjectsNonFiniteOrSpikes) {
  MetricBus source, target;
  std::vector<metrics::Snapshot> out;
  target.subscribe([&](const metrics::Snapshot& s) { out.push_back(s); });
  FaultOptions options;
  options.corruption_probability = 1.0;
  options.corruption_metrics = 2;
  FaultyChannel channel(source, target, options, 9);
  for (int t = 0; t < 100; ++t) {
    auto s = tick_snapshot(t);
    s.set(metrics::MetricId::kCpuUser, 50.0);
    source.announce(s);
  }
  EXPECT_EQ(channel.corrupted(), 100u);
  ASSERT_EQ(out.size(), 100u);
  std::size_t damaged = 0;
  for (const auto& s : out)
    for (double v : s.values)
      if (!std::isfinite(v) || std::abs(v) > 1e12) {
        ++damaged;
        break;
      }
  EXPECT_EQ(damaged, 100u);
}

TEST(FaultyChannel, DuplicateDeliversTwice) {
  MetricBus source, target;
  std::vector<metrics::SimTime> seen;
  target.subscribe(
      [&](const metrics::Snapshot& s) { seen.push_back(s.time); });
  FaultyChannel channel(source, target,
                        FaultOptions{.duplicate_probability = 1.0}, 5);
  for (int t = 0; t < 10; ++t) source.announce(tick_snapshot(t));
  EXPECT_EQ(channel.duplicated(), 10u);
  ASSERT_EQ(seen.size(), 20u);
  for (std::size_t t = 0; t < 10; ++t) {
    EXPECT_EQ(seen[2 * t], static_cast<metrics::SimTime>(t));
    EXPECT_EQ(seen[2 * t + 1],
              static_cast<metrics::SimTime>(t));  // back-to-back duplicate
  }
}

TEST(FaultyChannel, ReplayReannouncesStaleSnapshots) {
  MetricBus source, target;
  std::vector<metrics::SimTime> seen;
  target.subscribe(
      [&](const metrics::Snapshot& s) { seen.push_back(s.time); });
  FaultOptions options;
  options.replay_probability = 1.0;
  options.replay_depth = 4;
  FaultyChannel channel(source, target, options, 5);
  for (int t = 0; t < 50; ++t) source.announce(tick_snapshot(t));
  // The first announcement has no history to replay from.
  EXPECT_EQ(channel.replayed(), 49u);
  EXPECT_EQ(seen.size(), 99u);
  // seen = [f0, f1, r1, f2, r2, ...]: every replayed announcement is
  // strictly older than its trigger and within the replay depth.
  for (std::size_t i = 2; i < seen.size(); i += 2) {
    const metrics::SimTime fresh = seen[i - 1], stale = seen[i];
    EXPECT_LT(stale, fresh);
    EXPECT_GE(stale, fresh - static_cast<metrics::SimTime>(options.replay_depth));
  }
}

TEST(FaultyChannel, MetricDropoutBlanksIndividualSensors) {
  MetricBus source, target;
  std::vector<metrics::Snapshot> out;
  target.subscribe([&](const metrics::Snapshot& s) { out.push_back(s); });
  FaultyChannel channel(
      source, target, FaultOptions{.metric_dropout_probability = 1.0}, 5);
  auto s = tick_snapshot(0);
  s.set(metrics::MetricId::kCpuUser, 50.0);
  source.announce(s);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(channel.metric_dropouts(), metrics::kMetricCount);
  for (double v : out[0].values) EXPECT_TRUE(std::isnan(v));
}

TEST(FaultyChannel, ClassifierCompositionRobustToLoss) {
  // The majority-vote composition barely moves when 30% of a run's
  // announcements are dropped: losses thin the sample, not the signal.
  core::ClassificationPipeline pipeline;
  pipeline.train(core::testing::synthetic_training());

  MetricBus source, target;
  std::vector<core::ApplicationClass> labels;
  target.subscribe([&](const metrics::Snapshot& s) {
    labels.push_back(pipeline.classify(s));
  });
  FaultyChannel channel(source, target,
                        FaultOptions{.drop_probability = 0.3}, 11);

  linalg::Rng rng(5);
  for (int t = 0; t < 300; ++t) {
    auto s = core::testing::synthetic_snapshot(
        t % 4 == 0 ? core::ApplicationClass::kIdle
                   : core::ApplicationClass::kIo,
        rng, t);
    source.announce(s);
  }
  ASSERT_GT(labels.size(), 150u);
  const core::ClassComposition comp(labels);
  EXPECT_EQ(comp.dominant(), core::ApplicationClass::kIo);
  EXPECT_NEAR(comp.fraction(core::ApplicationClass::kIo), 0.75, 0.08);
}

}  // namespace
}  // namespace appclass::monitor
