#include "core/composition.hpp"

#include <gtest/gtest.h>

namespace appclass::core {
namespace {

TEST(Composition, FractionsSumToOne) {
  const std::vector<ApplicationClass> classes = {
      ApplicationClass::kCpu, ApplicationClass::kCpu, ApplicationClass::kIo,
      ApplicationClass::kIdle};
  const ClassComposition comp(classes);
  double sum = 0.0;
  for (double f : comp.fractions()) sum += f;
  EXPECT_NEAR(sum, 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(comp.fraction(ApplicationClass::kCpu), 0.5);
  EXPECT_DOUBLE_EQ(comp.fraction(ApplicationClass::kIo), 0.25);
  EXPECT_EQ(comp.samples(), 4u);
}

TEST(Composition, DominantIsMajority) {
  const std::vector<ApplicationClass> classes = {
      ApplicationClass::kNetwork, ApplicationClass::kNetwork,
      ApplicationClass::kIdle};
  EXPECT_EQ(ClassComposition(classes).dominant(), ApplicationClass::kNetwork);
}

TEST(Composition, EmptyHasZeroSamples) {
  const ClassComposition comp;
  EXPECT_EQ(comp.samples(), 0u);
  EXPECT_EQ(comp.to_string(), "(no samples)");
}

TEST(Composition, ToStringOmitsZeroClasses) {
  const std::vector<ApplicationClass> classes = {ApplicationClass::kCpu};
  const std::string s = ClassComposition(classes).to_string();
  EXPECT_NE(s.find("cpu 100.00%"), std::string::npos);
  EXPECT_EQ(s.find("io"), std::string::npos);
}

TEST(Composition, FromFractionsRoundTrips) {
  const std::vector<ApplicationClass> classes = {
      ApplicationClass::kIo, ApplicationClass::kMemory, ApplicationClass::kIo};
  const ClassComposition original(classes);
  std::array<double, kClassCount> fr{};
  for (std::size_t c = 0; c < kClassCount; ++c)
    fr[c] = original.fractions()[c];
  const auto restored = ClassComposition::from_fractions(fr, 3);
  EXPECT_EQ(restored.samples(), 3u);
  EXPECT_EQ(restored.dominant(), ApplicationClass::kIo);
}

TEST(MajorityVote, PicksMode) {
  const std::vector<ApplicationClass> classes = {
      ApplicationClass::kIdle, ApplicationClass::kMemory,
      ApplicationClass::kMemory};
  EXPECT_EQ(majority_vote(classes), ApplicationClass::kMemory);
}

TEST(MajorityVote, TieIsDeterministic) {
  const std::vector<ApplicationClass> a = {ApplicationClass::kCpu,
                                           ApplicationClass::kIo};
  const std::vector<ApplicationClass> b = {ApplicationClass::kIo,
                                           ApplicationClass::kCpu};
  // Ties resolve by enum order, independent of input order.
  EXPECT_EQ(majority_vote(a), majority_vote(b));
}

TEST(ClassLabels, NamesRoundTrip) {
  for (std::size_t c = 0; c < kClassCount; ++c) {
    const auto cls = class_from_index(c);
    const auto parsed = class_from_string(to_string(cls));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, cls);
  }
  EXPECT_FALSE(class_from_string("bogus").has_value());
}

}  // namespace
}  // namespace appclass::core
