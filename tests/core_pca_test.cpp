#include "core/pca.hpp"

#include <gtest/gtest.h>

#include "linalg/random.hpp"
#include "linalg/stats.hpp"

namespace appclass::core {
namespace {

/// Data with variance concentrated along a known direction.
linalg::Matrix anisotropic_data(std::size_t n, std::uint64_t seed) {
  linalg::Rng rng(seed);
  linalg::Matrix m(n, 3);
  for (std::size_t r = 0; r < n; ++r) {
    const double main_axis = rng.normal(0.0, 10.0);
    m(r, 0) = main_axis + rng.normal(0.0, 0.1);
    m(r, 1) = main_axis + rng.normal(0.0, 0.1);
    m(r, 2) = rng.normal(0.0, 0.5);
  }
  return m;
}

TEST(Pca, ForcedComponentCount) {
  Pca pca({.min_fraction_variance = 0.99, .forced_components = 2});
  pca.fit(anisotropic_data(200, 1));
  EXPECT_EQ(pca.components(), 2u);
  EXPECT_EQ(pca.input_dimension(), 3u);
}

TEST(Pca, VarianceThresholdSelectsFewComponentsForAnisotropicData) {
  Pca pca({.min_fraction_variance = 0.9, .forced_components = 0});
  pca.fit(anisotropic_data(500, 2));
  // One direction carries nearly all variance.
  EXPECT_EQ(pca.components(), 1u);
  EXPECT_GE(pca.captured_variance(), 0.9);
}

TEST(Pca, ThresholdOneKeepsEverything) {
  Pca pca({.min_fraction_variance = 1.0, .forced_components = 0});
  pca.fit(anisotropic_data(100, 3));
  EXPECT_EQ(pca.components(), 3u);
  EXPECT_NEAR(pca.captured_variance(), 1.0, 1e-12);
}

TEST(Pca, FirstComponentAlignsWithDominantDirection) {
  Pca pca({.forced_components = 1});
  pca.fit(anisotropic_data(500, 4));
  const auto& w = pca.projection();
  // Dominant direction is (1,1,0)/sqrt(2).
  EXPECT_NEAR(std::abs(w(0, 0)), std::abs(w(1, 0)), 0.05);
  EXPECT_LT(std::abs(w(2, 0)), 0.1);
}

TEST(Pca, ExplainedVarianceRatiosDescendAndSumBelowOne) {
  Pca pca({.forced_components = 2});
  pca.fit(anisotropic_data(300, 5));
  const auto r = pca.explained_variance_ratio();
  ASSERT_EQ(r.size(), 2u);
  EXPECT_GE(r[0], r[1]);
  EXPECT_LE(r[0] + r[1], 1.0 + 1e-12);
}

TEST(Pca, TransformedDataIsCentered) {
  Pca pca({.forced_components = 2});
  const auto data = anisotropic_data(400, 6);
  pca.fit(data);
  const auto proj = pca.transform(data);
  const auto stats = linalg::column_stats(proj);
  for (double m : stats.mean) EXPECT_NEAR(m, 0.0, 1e-9);
}

TEST(Pca, ComponentsAreDecorrelated) {
  Pca pca({.forced_components = 3});
  const auto data = anisotropic_data(400, 7);
  pca.fit(data);
  const auto proj = pca.transform(data);
  const auto c0 = proj.col(0);
  const auto c1 = proj.col(1);
  EXPECT_NEAR(linalg::correlation(c0, c1), 0.0, 1e-6);
}

TEST(Pca, SingleRowTransformMatchesMatrixTransform) {
  Pca pca({.forced_components = 2});
  const auto data = anisotropic_data(50, 8);
  pca.fit(data);
  const auto all = pca.transform(data);
  const auto one = pca.transform(data.row(17));
  EXPECT_DOUBLE_EQ(one[0], all.at(17, 0));
  EXPECT_DOUBLE_EQ(one[1], all.at(17, 1));
}

TEST(Pca, FullRankInverseTransformIsExact) {
  Pca pca({.forced_components = 3});
  const auto data = anisotropic_data(60, 9);
  pca.fit(data);
  const auto restored = pca.inverse_transform(pca.transform(data));
  EXPECT_LT(restored.max_abs_diff(data), 1e-9);
}

TEST(Pca, ReconstructionErrorDecreasesWithMoreComponents) {
  const auto data = anisotropic_data(200, 10);
  double previous = 1e18;
  for (std::size_t q = 1; q <= 3; ++q) {
    Pca pca({.forced_components = q});
    pca.fit(data);
    const auto restored = pca.inverse_transform(pca.transform(data));
    double err = 0.0;
    for (std::size_t r = 0; r < data.rows(); ++r)
      err += linalg::squared_distance(data.row(r), restored.row(r));
    EXPECT_LE(err, previous + 1e-9);
    previous = err;
  }
  EXPECT_NEAR(previous, 0.0, 1e-9);
}

TEST(Pca, ProjectionColumnsAreOrthonormal) {
  Pca pca({.forced_components = 3});
  pca.fit(anisotropic_data(120, 11));
  const auto& w = pca.projection();
  const auto wtw = w.transposed() * w;
  EXPECT_LT(wtw.max_abs_diff(linalg::Matrix::identity(3)), 1e-9);
}

TEST(Pca, MeanMatchesColumnMeans) {
  Pca pca({.forced_components = 1});
  const auto data = anisotropic_data(80, 12);
  pca.fit(data);
  const auto stats = linalg::column_stats(data);
  for (std::size_t c = 0; c < 3; ++c)
    EXPECT_NEAR(pca.mean()[c], stats.mean[c], 1e-12);
}

TEST(Pca, ForcedCountClampedToDimension) {
  Pca pca({.forced_components = 10});
  pca.fit(anisotropic_data(40, 13));
  EXPECT_EQ(pca.components(), 3u);
}

}  // namespace
}  // namespace appclass::core
