#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "obs/export.hpp"
#include "obs/span.hpp"

namespace appclass::obs {
namespace {

TEST(Counter, StartsAtZeroAndAccumulates) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Gauge, SetAndAdd) {
  Gauge g;
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  g.set(3.5);
  EXPECT_DOUBLE_EQ(g.value(), 3.5);
  g.add(-1.25);
  EXPECT_DOUBLE_EQ(g.value(), 2.25);
}

TEST(HistogramTest, BucketsCountAndSum) {
  Histogram h({1.0, 10.0, 100.0});
  h.observe(0.5);    // bucket 0 (<= 1)
  h.observe(1.0);    // bucket 0 (inclusive upper bound)
  h.observe(7.0);    // bucket 1
  h.observe(1000.0); // +Inf bucket
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 1008.5);
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(2), 0u);
  EXPECT_EQ(h.bucket_count(3), 1u);
}

TEST(HistogramTest, ObserveManyChargesAllItems) {
  Histogram h({1.0, 10.0});
  h.observe_many(5.0, 1000);
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_DOUBLE_EQ(h.sum(), 5000.0);
  EXPECT_EQ(h.bucket_count(1), 1000u);
}

TEST(Registry, SameNameAndLabelsReturnsSameMetric) {
  MetricsRegistry registry;
  Counter& a = registry.counter("requests_total", {{"vm", "1"}});
  Counter& b = registry.counter("requests_total", {{"vm", "1"}});
  Counter& other = registry.counter("requests_total", {{"vm", "2"}});
  EXPECT_EQ(&a, &b);
  EXPECT_NE(&a, &other);
  // Label order must not matter.
  Counter& c =
      registry.counter("multi", {{"a", "1"}, {"b", "2"}});
  Counter& d =
      registry.counter("multi", {{"b", "2"}, {"a", "1"}});
  EXPECT_EQ(&c, &d);
}

TEST(Registry, SnapshotReflectsValuesAndSorts) {
  MetricsRegistry registry;
  registry.counter("b_total").inc(2);
  registry.counter("a_total").inc(1);
  registry.gauge("load").set(0.75);
  registry.histogram("latency", {}, {0.1, 1.0}).observe(0.05);

  const RegistrySnapshot snapshot = registry.snapshot();
  ASSERT_EQ(snapshot.counters.size(), 2u);
  EXPECT_EQ(snapshot.counters[0].name, "a_total");
  EXPECT_EQ(snapshot.counters[1].name, "b_total");
  EXPECT_EQ(snapshot.counters[1].value, 2u);
  ASSERT_EQ(snapshot.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(snapshot.gauges[0].value, 0.75);
  ASSERT_EQ(snapshot.histograms.size(), 1u);
  EXPECT_EQ(snapshot.histograms[0].count, 1u);
  ASSERT_NE(snapshot.find_counter("a_total"), nullptr);
  EXPECT_EQ(snapshot.find_counter("missing"), nullptr);
  ASSERT_NE(snapshot.find_histogram("latency"), nullptr);
}

TEST(Registry, ResetValuesKeepsRegistrationsAndReferences) {
  MetricsRegistry registry;
  Counter& c = registry.counter("hits_total");
  Histogram& h = registry.histogram("t", {}, {1.0});
  c.inc(7);
  h.observe(0.5);
  registry.reset_values();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(h.count(), 0u);
  // The same reference is still live and usable.
  c.inc();
  EXPECT_EQ(registry.snapshot().find_counter("hits_total")->value, 1u);
}

TEST(Registry, ConcurrentIncrementsFromManyThreads) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kIters = 20000;
  Counter& counter = registry.counter("concurrent_total");
  Gauge& gauge = registry.gauge("concurrent_gauge");
  Histogram& hist = registry.histogram("concurrent_seconds", {}, {0.5, 1.5});

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&registry, &counter, &gauge, &hist] {
      for (int i = 0; i < kIters; ++i) {
        counter.inc();
        gauge.add(1.0);
        hist.observe(1.0);
        // Re-resolution under contention must return the same objects.
        if (i % 1000 == 0)
          EXPECT_EQ(&registry.counter("concurrent_total"), &counter);
      }
    });
  for (auto& t : threads) t.join();

  EXPECT_EQ(counter.value(), static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_DOUBLE_EQ(gauge.value(), static_cast<double>(kThreads) * kIters);
  EXPECT_EQ(hist.count(), static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_EQ(hist.bucket_count(1), static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_DOUBLE_EQ(hist.sum(), static_cast<double>(kThreads) * kIters);
}

TEST(ScopedTimerTest, ObservesOnDestruction) {
  Histogram h({1.0});
  {
    ScopedTimer timer(h);
  }
  EXPECT_EQ(h.count(), 1u);
  EXPECT_GE(h.sum(), 0.0);
}

TEST(ScopedTimerTest, StopAndObservePerItem) {
  Histogram h({1.0});
  {
    ScopedTimer timer(h);
    timer.stop_and_observe_per_item(50);
  }  // destructor must not double-record
  EXPECT_EQ(h.count(), 50u);
}

TEST(StageHistogram, RegistersOnGlobalRegistry) {
  Histogram& h = stage_histogram("obs_test_stage");
  h.observe(0.001);
  const auto snapshot = MetricsRegistry::global().snapshot();
  const HistogramSnapshot* found = snapshot.find_histogram(
      "appclass_stage_seconds", {{"stage", "obs_test_stage"}});
  ASSERT_NE(found, nullptr);
  EXPECT_GE(found->count, 1u);
}

// ---- exporter golden checks -----------------------------------------------

RegistrySnapshot golden_snapshot() {
  MetricsRegistry registry;
  registry.counter("requests_total", {{"vm", "0"}}).inc(3);
  registry.gauge("load").set(1.5);
  Histogram& h = registry.histogram("latency_seconds", {}, {0.1, 1.0});
  h.observe(0.05);
  h.observe(0.5);
  h.observe(2.0);
  return registry.snapshot();
}

TEST(Exporters, TableGolden) {
  const std::string table = to_table(golden_snapshot());
  EXPECT_NE(table.find("requests_total{vm=0}"), std::string::npos);
  EXPECT_NE(table.find("load"), std::string::npos);
  EXPECT_NE(table.find("latency_seconds"), std::string::npos);
  // count / mean columns for the histogram row.
  EXPECT_NE(table.find("3"), std::string::npos);
  EXPECT_NE(table.find("0.85"), std::string::npos);  // mean of the three
}

TEST(Exporters, JsonGolden) {
  const std::string json = to_json(golden_snapshot());
  EXPECT_EQ(json, R"({"counters":[{"name":"requests_total","labels":{"vm":"0"},"value":3}],)"
                  R"("gauges":[{"name":"load","labels":{},"value":1.5}],)"
                  R"("histograms":[{"name":"latency_seconds","labels":{},)"
                  R"("count":3,"sum":2.55,"mean":0.85,)"
                  R"("buckets":[{"le":0.1,"count":1},{"le":1,"count":1},)"
                  R"({"le":"+Inf","count":1}]}]})");
}

TEST(Exporters, PrometheusGolden) {
  const std::string prom = to_prometheus(golden_snapshot());
  EXPECT_EQ(prom,
            "# TYPE requests_total counter\n"
            "requests_total{vm=\"0\"} 3\n"
            "# TYPE load gauge\n"
            "load 1.5\n"
            "# TYPE latency_seconds histogram\n"
            "latency_seconds_bucket{le=\"0.1\"} 1\n"
            "latency_seconds_bucket{le=\"1\"} 2\n"
            "latency_seconds_bucket{le=\"+Inf\"} 3\n"
            "latency_seconds_sum 2.55\n"
            "latency_seconds_count 3\n");
}

TEST(Exporters, PrometheusSanitizesNames) {
  MetricsRegistry registry;
  registry.counter("weird.name-x").inc();
  const std::string prom = to_prometheus(registry.snapshot());
  EXPECT_NE(prom.find("weird_name_x 1"), std::string::npos);
}

TEST(Exporters, EmptySnapshot) {
  const RegistrySnapshot empty;
  EXPECT_EQ(to_table(empty), "(no metrics recorded)\n");
  EXPECT_EQ(to_json(empty),
            "{\"counters\":[],\"gauges\":[],\"histograms\":[]}");
  EXPECT_EQ(to_prometheus(empty), "");
}

}  // namespace
}  // namespace appclass::obs
