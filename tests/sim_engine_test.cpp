#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "sim/testbed.hpp"
#include "workloads/catalog.hpp"
#include "workloads/phased_app.hpp"

namespace appclass::sim {
namespace {

using workloads::Phase;
using workloads::PhasedApp;

/// A deterministic CPU burner: `cores` demand for `seconds` of work.
std::unique_ptr<WorkloadModel> cpu_burner(double cores, double seconds) {
  Phase p;
  p.name = "burn";
  p.work_units = seconds;
  p.nominal_rate = 1.0;
  p.cpu_per_unit = cores;
  p.rate_jitter = 0.0;
  return std::make_unique<PhasedApp>("burner", std::vector<Phase>{p});
}

/// A deterministic disk hog.
std::unique_ptr<WorkloadModel> disk_hog(double blocks, double seconds) {
  Phase p;
  p.name = "io";
  p.work_units = seconds;
  p.nominal_rate = 1.0;
  p.write_blocks_per_unit = blocks;
  p.rate_jitter = 0.0;
  return std::make_unique<PhasedApp>("diskhog", std::vector<Phase>{p});
}

Testbed small_testbed(std::uint64_t seed = 1) {
  TestbedOptions opts;
  opts.seed = seed;
  opts.four_vms = false;
  return make_testbed(opts);
}

TEST(Engine, TestbedTopologyMatchesPaper) {
  TestbedOptions opts;
  opts.four_vms = true;
  const Testbed tb = make_testbed(opts);
  EXPECT_EQ(tb.engine->host_count(), 2u);
  EXPECT_EQ(tb.engine->vm_count(), 4u);
  EXPECT_EQ(tb.engine->vm(tb.vm1).host_index(), tb.host_a);
  EXPECT_EQ(tb.engine->vm(tb.vm4).host_index(), tb.host_b);
  EXPECT_EQ(tb.engine->vm(tb.vm1).spec().ip, "10.0.0.1");
  // Host B is the faster machine.
  EXPECT_GT(tb.engine->host(tb.host_b).spec.cpu_speed,
            tb.engine->host(tb.host_a).spec.cpu_speed);
}

TEST(Engine, InstanceLifecycle) {
  Testbed tb = small_testbed();
  const InstanceId id = tb.engine->submit(tb.vm1, cpu_burner(0.5, 10.0));
  EXPECT_EQ(tb.engine->instance(id).state, InstanceState::kPending);
  tb.engine->step();
  EXPECT_EQ(tb.engine->instance(id).state, InstanceState::kRunning);
  EXPECT_TRUE(tb.engine->run_until_done(100));
  const InstanceInfo info = tb.engine->instance(id);
  EXPECT_EQ(info.state, InstanceState::kFinished);
  EXPECT_EQ(info.start_time, 0);
  EXPECT_NEAR(static_cast<double>(info.elapsed()), 10.0, 2.0);
}

TEST(Engine, DelayedSubmitStartsAtRequestedTime) {
  Testbed tb = small_testbed();
  const InstanceId id =
      tb.engine->submit(tb.vm1, cpu_burner(0.5, 5.0), /*submit_time=*/7);
  tb.engine->run_for(7);
  EXPECT_EQ(tb.engine->instance(id).state, InstanceState::kPending);
  tb.engine->step();
  EXPECT_EQ(tb.engine->instance(id).state, InstanceState::kRunning);
  EXPECT_EQ(tb.engine->instance(id).start_time, 7);
}

TEST(Engine, SubmitAfterRunsSequentially) {
  Testbed tb = small_testbed();
  const InstanceId first = tb.engine->submit(tb.vm1, cpu_burner(1.0, 10.0));
  const InstanceId second =
      tb.engine->submit_after(tb.vm1, cpu_burner(1.0, 10.0), first);
  EXPECT_TRUE(tb.engine->run_until_done(100));
  EXPECT_GE(tb.engine->instance(second).start_time,
            tb.engine->instance(first).finish_time);
}

TEST(Engine, VcpuContentionSlowsEqualJobs) {
  // Two full-core jobs on a 1-vCPU VM take about twice as long.
  Testbed tb = small_testbed();
  const InstanceId a = tb.engine->submit(tb.vm1, cpu_burner(1.0, 50.0));
  const InstanceId b = tb.engine->submit(tb.vm1, cpu_burner(1.0, 50.0));
  EXPECT_TRUE(tb.engine->run_until_done(1000));
  EXPECT_NEAR(static_cast<double>(tb.engine->instance(a).elapsed()), 100.0,
              8.0);
  EXPECT_NEAR(static_cast<double>(tb.engine->instance(b).elapsed()), 100.0,
              8.0);
}

TEST(Engine, SmallCpuConsumerUnaffectedByContention) {
  Testbed tb = small_testbed();
  const InstanceId spinner = tb.engine->submit(tb.vm1, cpu_burner(1.0, 60.0));
  const InstanceId light = tb.engine->submit(tb.vm1, cpu_burner(0.1, 30.0));
  EXPECT_TRUE(tb.engine->run_until_done(1000));
  // The 0.1-core job is below its fair share: runs at full speed.
  EXPECT_NEAR(static_cast<double>(tb.engine->instance(light).elapsed()), 30.0,
              3.0);
  (void)spinner;
}

TEST(Engine, DiskContentionSlowsIoJobs) {
  Testbed tb = small_testbed();
  // Two hogs at 8000 blocks/s each exceed the 11000-block vdisk.
  const InstanceId a = tb.engine->submit(tb.vm1, disk_hog(8000.0, 40.0));
  const InstanceId b = tb.engine->submit(tb.vm1, disk_hog(8000.0, 40.0));
  EXPECT_TRUE(tb.engine->run_until_done(1000));
  EXPECT_GT(tb.engine->instance(a).elapsed(), 52);
  EXPECT_GT(tb.engine->instance(b).elapsed(), 52);
}

TEST(Engine, FasterHostRunsCpuWorkFaster) {
  TestbedOptions opts;
  opts.four_vms = true;
  Testbed tb = make_testbed(opts);
  const InstanceId slow =
      tb.engine->submit(tb.vm1, workloads::make_ch3d(200.0));  // host A
  const InstanceId fast =
      tb.engine->submit(tb.vm2, workloads::make_ch3d(200.0));  // host B
  EXPECT_TRUE(tb.engine->run_until_done(2000));
  const double ratio =
      static_cast<double>(tb.engine->instance(slow).elapsed()) /
      static_cast<double>(tb.engine->instance(fast).elapsed());
  EXPECT_NEAR(ratio, 2.4 / 1.8, 0.12);
}

TEST(Engine, SnapshotsEmittedPerVmPerTick) {
  Testbed tb = small_testbed();
  std::size_t count = 0;
  tb.engine->set_snapshot_sink(
      [&](VmId, const metrics::Snapshot&) { ++count; });
  tb.engine->run_for(10);
  EXPECT_EQ(count, 10u * tb.engine->vm_count());
}

TEST(Engine, SnapshotMetricsAreSane) {
  Testbed tb = small_testbed();
  tb.engine->submit(tb.vm1, cpu_burner(1.0, 100.0));
  std::vector<metrics::Snapshot> snaps;
  tb.engine->set_snapshot_sink(
      [&](VmId vm, const metrics::Snapshot& s) {
        if (vm == 0) snaps.push_back(s);
      });
  tb.engine->run_for(50);
  ASSERT_FALSE(snaps.empty());
  using metrics::MetricId;
  for (const auto& s : snaps) {
    const double user = s.get(MetricId::kCpuUser);
    const double sys = s.get(MetricId::kCpuSystem);
    const double idle = s.get(MetricId::kCpuIdle);
    const double wio = s.get(MetricId::kCpuWio);
    EXPECT_GE(user, 0.0);
    EXPECT_GE(sys, 0.0);
    EXPECT_GE(idle, -1e-9);
    EXPECT_NEAR(user + sys + idle + wio, 100.0, 1e-6);
    EXPECT_GE(s.get(MetricId::kMemFree), 0.0);
    EXPECT_LE(s.get(MetricId::kMemFree), s.get(MetricId::kMemTotal));
    EXPECT_GE(s.get(MetricId::kSwapFree), 0.0);
    EXPECT_GE(s.get(MetricId::kIoBi), 0.0);
    EXPECT_GE(s.get(MetricId::kBytesIn), 0.0);
  }
  // The burner saturates its vCPU: late snapshots show high user CPU.
  EXPECT_GT(snaps.back().get(MetricId::kCpuUser), 80.0);
}

TEST(Engine, LoadAverageTracksRunQueue) {
  Testbed tb = small_testbed();
  tb.engine->submit(tb.vm1, cpu_burner(1.0, 400.0));
  tb.engine->submit(tb.vm1, cpu_burner(1.0, 400.0));
  metrics::Snapshot last;
  tb.engine->set_snapshot_sink(
      [&](VmId vm, const metrics::Snapshot& s) {
        if (vm == 0) last = s;
      });
  tb.engine->run_for(300);
  EXPECT_NEAR(last.get(metrics::MetricId::kLoadOne), 2.0, 0.3);
  EXPECT_NEAR(last.get(metrics::MetricId::kLoadFive), 2.0, 0.8);
}

TEST(Engine, PagingAppearsOnlyWhenOvercommitted) {
  Testbed tb = small_testbed();
  tb.engine->submit(tb.vm1, workloads::make_pagebench(384.0));
  double max_swap = 0.0;
  tb.engine->set_snapshot_sink(
      [&](VmId vm, const metrics::Snapshot& s) {
        if (vm == 0)
          max_swap = std::max(max_swap, s.get(metrics::MetricId::kSwapIn));
      });
  tb.engine->run_for(60);
  EXPECT_GT(max_swap, 500.0);

  // Same app in a VM with plenty of memory: no swap traffic.
  TestbedOptions opts;
  opts.four_vms = false;
  opts.vm1_ram_mb = 1024.0;
  Testbed big = make_testbed(opts);
  big.engine->submit(big.vm1, workloads::make_pagebench(384.0));
  double swap = 0.0;
  big.engine->set_snapshot_sink(
      [&](VmId vm, const metrics::Snapshot& s) {
        if (vm == 0) swap = std::max(swap, s.get(metrics::MetricId::kSwapIn));
      });
  big.engine->run_for(60);
  EXPECT_DOUBLE_EQ(swap, 0.0);
}

TEST(Engine, PageCacheCollapsesUnderMemoryPressure) {
  TestbedOptions opts;
  opts.four_vms = false;
  opts.vm1_ram_mb = 32.0;
  Testbed tb = make_testbed(opts);
  tb.engine->submit(tb.vm1,
                    workloads::make_specseis(workloads::SeisDataSize::kMedium));
  tb.engine->run_for(100);
  // The paper observed the buffer cache shrinking to ~1 MB in the 32 MB VM.
  EXPECT_LT(tb.engine->vm(tb.vm1).cache_mb(), 4.0);
}

TEST(Engine, CrossHostFlowAppearsOnBothVms) {
  TestbedOptions opts;
  opts.four_vms = false;
  Testbed tb = make_testbed(opts);
  tb.engine->submit(tb.vm1,
                    workloads::make_ettcp(static_cast<int>(tb.vm4)));
  double vm1_out = 0.0, vm4_in = 0.0;
  tb.engine->set_snapshot_sink(
      [&](VmId vm, const metrics::Snapshot& s) {
        if (vm == tb.vm1)
          vm1_out = std::max(vm1_out, s.get(metrics::MetricId::kBytesOut));
        if (vm == tb.vm4)
          vm4_in = std::max(vm4_in, s.get(metrics::MetricId::kBytesIn));
      });
  tb.engine->run_for(30);
  EXPECT_GT(vm1_out, 5.0e6);
  EXPECT_NEAR(vm4_in, vm1_out, 0.35 * vm1_out);
}

TEST(Engine, DeterministicForSameSeed) {
  auto run = [](std::uint64_t seed) {
    TestbedOptions opts;
    opts.seed = seed;
    opts.four_vms = false;
    Testbed tb = make_testbed(opts);
    const InstanceId id = tb.engine->submit(tb.vm1, workloads::make_postmark());
    tb.engine->run_until_done(10000);
    return tb.engine->instance(id).elapsed();
  };
  EXPECT_EQ(run(99), run(99));
  // Different seeds should (almost surely) differ in elapsed time.
  EXPECT_NE(run(99), run(100));
}

TEST(Engine, AllDoneReflectsCompletion) {
  Testbed tb = small_testbed();
  EXPECT_TRUE(tb.engine->all_done());  // vacuously
  tb.engine->submit(tb.vm1, cpu_burner(0.5, 5.0));
  EXPECT_FALSE(tb.engine->all_done());
  EXPECT_TRUE(tb.engine->run_until_done(100));
  EXPECT_TRUE(tb.engine->all_done());
}

TEST(Engine, RunUntilDoneRespectsTickBudget) {
  Testbed tb = small_testbed();
  tb.engine->submit(tb.vm1, cpu_burner(1.0, 1000.0));
  EXPECT_FALSE(tb.engine->run_until_done(10));
  EXPECT_EQ(tb.engine->now(), 10);
}

}  // namespace
}  // namespace appclass::sim
