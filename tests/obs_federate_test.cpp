// Fleet federation: Prometheus text round-trip (export -> parse ->
// re-export is a fixed point), per-worker snapshot merging, and Chrome
// trace stitching. The fixed-point property is what makes federation
// composable: a Prometheus server scraping /fleet/metrics must see the
// same conformant dialect the workers emit.
#include "obs/federate.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/cardinality.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"

namespace appclass::obs {
namespace {

// Dyadic values only: %.9g / %g print them exactly, so byte-equality
// assertions exercise the format contract, not float-printing luck.
RegistrySnapshot sample_registry_snapshot() {
  MetricsRegistry reg;
  reg.counter("appclass_frames_total").inc(42);
  reg.counter("appclass_frames_total", {{"peer", "w1"}}).inc(7);
  reg.gauge("appclass_backlog").set(0.25);
  reg.gauge("appclass_backlog", {{"node", "a\\b\"c\nd"}}).set(-1.5);
  Histogram& h =
      reg.histogram("appclass_stage_seconds", {{"stage", "ingest"}},
                    {0.125, 0.5, 2.0});
  h.observe(0.0625);
  h.observe(0.25);
  h.observe(0.25);
  h.observe(4.0);
  return reg.snapshot();
}

TEST(ObsFederateParse, ExportParseReexportIsFixedPoint) {
  const RegistrySnapshot snapshot = sample_registry_snapshot();
  const std::string text = to_prometheus(snapshot);
  const auto parsed = parse_prometheus(text);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(to_prometheus(*parsed), text);
}

TEST(ObsFederateParse, RecoversValuesAndDecumulatesBuckets) {
  const RegistrySnapshot snapshot = sample_registry_snapshot();
  const auto parsed = parse_prometheus(to_prometheus(snapshot));
  ASSERT_TRUE(parsed.has_value());

  const auto* plain = parsed->find_counter("appclass_frames_total");
  ASSERT_NE(plain, nullptr);
  EXPECT_EQ(plain->value, 42u);
  const auto* labeled =
      parsed->find_counter("appclass_frames_total", {{"peer", "w1"}});
  ASSERT_NE(labeled, nullptr);
  EXPECT_EQ(labeled->value, 7u);

  const auto* hist = parsed->find_histogram("appclass_stage_seconds",
                                            {{"stage", "ingest"}});
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->bounds, (std::vector<double>{0.125, 0.5, 2.0}));
  // Text carries cumulative buckets; the parse de-cumulates them back.
  EXPECT_EQ(hist->bucket_counts, (std::vector<std::uint64_t>{1, 2, 0, 1}));
  EXPECT_EQ(hist->count, 4u);
  EXPECT_DOUBLE_EQ(hist->sum, 0.0625 + 0.25 + 0.25 + 4.0);
}

TEST(ObsFederateParse, LabelValueEscapingRoundTrips) {
  const RegistrySnapshot snapshot = sample_registry_snapshot();
  const auto parsed = parse_prometheus(to_prometheus(snapshot));
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->gauges.size(), 2u);
  // Sorted by labels: the labeled gauge follows the unlabeled one.
  EXPECT_EQ(parsed->gauges[0].value, 0.25);
  ASSERT_EQ(parsed->gauges[1].labels.size(), 1u);
  EXPECT_EQ(parsed->gauges[1].labels[0].second, "a\\b\"c\nd");
  EXPECT_EQ(parsed->gauges[1].value, -1.5);
}

TEST(ObsFederateParse, IgnoresHelpAndFreeComments) {
  const auto parsed = parse_prometheus(
      "# HELP appclass_x_total Something helpful.\n"
      "# a free-form comment\n"
      "# TYPE appclass_x_total counter\n"
      "appclass_x_total 5\n");
  ASSERT_TRUE(parsed.has_value());
  const auto* c = parsed->find_counter("appclass_x_total");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->value, 5u);
}

TEST(ObsFederateParse, RejectsMalformedInputs) {
  const char* kBad[] = {
      // Sample without a declared family.
      "orphan 1\n",
      // Duplicate # TYPE for one family.
      "# TYPE a counter\n# TYPE a counter\na 1\n",
      // Duplicate series within one family.
      "# TYPE a counter\na 1\na 2\n",
      // Unrepresentable family kinds.
      "# TYPE a summary\n",
      "# TYPE a untyped\na 1\n",
      // Counter value must be an unsigned integer.
      "# TYPE a counter\na nope\n",
      // Unterminated label value.
      "# TYPE a counter\na{k=\"v} 1\n",
      // Histogram without the terminal +Inf bucket.
      "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
      // Cumulative bucket counts must not decrease.
      "# TYPE h histogram\nh_bucket{le=\"1\"} 5\n"
      "h_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 5\n",
      // Bucket bounds must ascend.
      "# TYPE h histogram\nh_bucket{le=\"2\"} 1\nh_bucket{le=\"1\"} 2\n"
      "h_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 2\n",
      // Bare sample named like a histogram family.
      "# TYPE h histogram\nh 3\n",
  };
  for (const char* text : kBad) {
    EXPECT_FALSE(parse_prometheus(text).has_value()) << text;
  }
}

RegistrySnapshot worker_snapshot(std::uint64_t frames, double backlog,
                                 std::vector<std::uint64_t> buckets,
                                 double sum, double exemplar_value,
                                 std::uint64_t exemplar_trace) {
  RegistrySnapshot s;
  s.counters.push_back({"appclass_frames_total", {}, frames});
  s.gauges.push_back({"appclass_backlog", {}, backlog});
  HistogramSnapshot h;
  h.name = "appclass_stage_seconds";
  h.bounds = {0.1, 1.0};
  h.bucket_counts = std::move(buckets);
  for (const std::uint64_t b : h.bucket_counts) h.count += b;
  h.sum = sum;
  h.exemplar_value = exemplar_value;
  h.exemplar_trace_id = exemplar_trace;
  s.histograms.push_back(std::move(h));
  return s;
}

TEST(ObsFederateMerge, SinglePartWithEmptyWorkerIsIdentity) {
  const RegistrySnapshot snapshot = sample_registry_snapshot();
  const FederationResult result = federate_snapshots({{"", snapshot}});
  EXPECT_EQ(result.dropped_series, 0u);
  EXPECT_EQ(to_prometheus(result.merged), to_prometheus(snapshot));
}

TEST(ObsFederateMerge, SumsCountersAndMergesHistogramBuckets) {
  const std::vector<FederationPart> parts = {
      {"0", worker_snapshot(3, 2.0, {1, 2, 3}, 1.5, 0.5, 7)},
      {"1", worker_snapshot(4, 5.0, {0, 1, 2}, 2.5, 2.0, 9)},
  };
  const FederationResult result = federate_snapshots(parts);
  EXPECT_EQ(result.dropped_series, 0u);

  const auto* frames = result.merged.find_counter("appclass_frames_total");
  ASSERT_NE(frames, nullptr);
  EXPECT_EQ(frames->value, 7u);

  const auto* hist =
      result.merged.find_histogram("appclass_stage_seconds");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->bucket_counts, (std::vector<std::uint64_t>{1, 3, 5}));
  EXPECT_EQ(hist->count, 9u);
  EXPECT_DOUBLE_EQ(hist->sum, 4.0);
  // Slowest traced observation across the fleet keeps the exemplar.
  EXPECT_EQ(hist->exemplar_trace_id, 9u);
  EXPECT_DOUBLE_EQ(hist->exemplar_value, 2.0);
}

TEST(ObsFederateMerge, GaugesGainWorkerLabelPerPart) {
  const std::vector<FederationPart> parts = {
      {"0", worker_snapshot(1, 2.0, {0, 0, 0}, 0.0, 0.0, 0)},
      {"1", worker_snapshot(1, 5.0, {0, 0, 0}, 0.0, 0.0, 0)},
  };
  const FederationResult result = federate_snapshots(parts);
  ASSERT_EQ(result.merged.gauges.size(), 2u);
  EXPECT_EQ(result.merged.gauges[0].labels,
            (Labels{{"worker", "0"}}));
  EXPECT_EQ(result.merged.gauges[0].value, 2.0);
  EXPECT_EQ(result.merged.gauges[1].labels,
            (Labels{{"worker", "1"}}));
  EXPECT_EQ(result.merged.gauges[1].value, 5.0);
}

TEST(ObsFederateMerge, WorkerLabelOverflowCollapsesNotExplodes) {
  BoundedLabelSet workers(2);
  std::vector<FederationPart> parts;
  for (int i = 0; i < 4; ++i) {
    parts.push_back({std::to_string(i),
                     worker_snapshot(1, static_cast<double>(i),
                                     {0, 0, 0}, 0.0, 0.0, 0)});
  }
  const FederationResult result = federate_snapshots(parts, &workers);
  // Workers 2 and 3 collapse into one "other" series (last value wins)
  // instead of minting unbounded per-worker series.
  ASSERT_EQ(result.merged.gauges.size(), 3u);
  EXPECT_EQ(result.merged.gauges[0].labels, (Labels{{"worker", "0"}}));
  EXPECT_EQ(result.merged.gauges[1].labels, (Labels{{"worker", "1"}}));
  EXPECT_EQ(result.merged.gauges[2].labels, (Labels{{"worker", "other"}}));
  EXPECT_EQ(result.merged.gauges[2].value, 3.0);
  EXPECT_EQ(workers.overflowed(), 2u);
}

TEST(ObsFederateMerge, MismatchedHistogramBoundsDropNotCorrupt) {
  RegistrySnapshot drifted = worker_snapshot(1, 0.0, {1, 1, 1}, 3.0, 0, 0);
  drifted.histograms[0].bounds = {0.2, 2.0};  // schema drift
  const std::vector<FederationPart> parts = {
      {"0", worker_snapshot(1, 0.0, {4, 4, 4}, 6.0, 0, 0)},
      {"1", std::move(drifted)},
  };
  const FederationResult result = federate_snapshots(parts);
  EXPECT_EQ(result.dropped_series, 1u);
  const auto* hist =
      result.merged.find_histogram("appclass_stage_seconds");
  ASSERT_NE(hist, nullptr);
  // First part's schema survives untouched; the drifted part is dropped.
  EXPECT_EQ(hist->bounds, (std::vector<double>{0.1, 1.0}));
  EXPECT_EQ(hist->count, 12u);
}

TEST(ObsFederateChrome, ParsesEventsEpochAndDrops) {
  const auto trace = parse_chrome_trace(
      "{\"displayTimeUnit\":\"ms\",\"epochWallUs\":1000,"
      "\"droppedEvents\":2,\"traceEvents\":[\n"
      "{\"name\":\"span_a\",\"cat\":\"dist\",\"ph\":\"X\",\"pid\":9,"
      "\"tid\":3,\"ts\":10,\"dur\":5,"
      "\"args\":{\"peer\":\"w1\",\"bytes\":128}},\n"
      "{\"name\":\"mark\",\"ph\":\"i\",\"s\":\"t\",\"ts\":20,"
      "\"unknownKey\":[1,{\"x\":2}]}\n"
      "]}");
  ASSERT_TRUE(trace.has_value());
  EXPECT_EQ(trace->epoch_wall_us, 1000);
  EXPECT_EQ(trace->dropped_events, 2u);
  ASSERT_EQ(trace->events.size(), 2u);
  const ChromeTraceEvent& span = trace->events[0];
  EXPECT_EQ(span.name, "span_a");
  EXPECT_EQ(span.ph, "X");
  EXPECT_EQ(span.ts, 10);
  ASSERT_TRUE(span.has_dur);
  EXPECT_EQ(span.dur, 5);
  // args keep raw JSON so numbers stay numbers on re-serialization.
  ASSERT_EQ(span.args.size(), 2u);
  EXPECT_EQ(span.args[0], (std::pair<std::string, std::string>{
                              "peer", "\"w1\""}));
  EXPECT_EQ(span.args[1],
            (std::pair<std::string, std::string>{"bytes", "128"}));
  EXPECT_EQ(trace->events[1].scope, "t");
}

TEST(ObsFederateChrome, RejectsTruncatedJson) {
  EXPECT_FALSE(parse_chrome_trace("{\"traceEvents\":[").has_value());
  EXPECT_FALSE(parse_chrome_trace("").has_value());
  EXPECT_FALSE(
      parse_chrome_trace("{\"traceEvents\":[{\"name\":1}]}").has_value());
}

TEST(ObsFederateChrome, StitchAssignsPidLanesAndAlignsEpochs) {
  const std::vector<TraceFleetPart> parts = {
      {"coordinator",
       "{\"epochWallUs\":1000000,\"traceEvents\":["
       "{\"name\":\"announce\",\"ph\":\"X\",\"pid\":11,\"tid\":1,"
       "\"ts\":10,\"dur\":4}]}"},
      {"worker-0",
       "{\"epochWallUs\":1000100,\"traceEvents\":["
       "{\"name\":\"ingest\",\"ph\":\"X\",\"pid\":22,\"tid\":1,"
       "\"ts\":5,\"dur\":3}]}"},
      {"worker-1", "not json at all"},
  };
  const StitchResult result = stitch_chrome_traces(parts);
  EXPECT_EQ(result.parts_stitched, 2u);
  EXPECT_EQ(result.parts_failed, 1u);
  EXPECT_EQ(result.events, 4u);  // 2 process_name records + 2 spans

  // The stitched document is itself a parseable Chrome trace.
  const auto merged = parse_chrome_trace(result.json);
  ASSERT_TRUE(merged.has_value());
  ASSERT_EQ(merged->events.size(), 4u);

  const ChromeTraceEvent& lane0 = merged->events[0];
  EXPECT_EQ(lane0.ph, "M");
  EXPECT_EQ(lane0.name, "process_name");
  EXPECT_EQ(lane0.pid, 1);
  ASSERT_EQ(lane0.args.size(), 1u);
  EXPECT_EQ(lane0.args[0].second, "\"coordinator\"");
  EXPECT_EQ(merged->events[1].pid, 2);
  EXPECT_EQ(merged->events[1].args[0].second, "\"worker-0\"");

  // Part 0 holds the earliest epoch: its timestamps stay put. Part 1
  // started 100us later, so its events shift onto the shared axis.
  const ChromeTraceEvent& announce = merged->events[2];
  EXPECT_EQ(announce.name, "announce");
  EXPECT_EQ(announce.pid, 1);
  EXPECT_EQ(announce.ts, 10);
  const ChromeTraceEvent& ingest = merged->events[3];
  EXPECT_EQ(ingest.name, "ingest");
  EXPECT_EQ(ingest.pid, 2);
  EXPECT_EQ(ingest.ts, 105);
}

TEST(ObsFederateChrome, StitchWithoutEpochKeepsNativeTimestamps) {
  const std::vector<TraceFleetPart> parts = {
      {"legacy", "{\"traceEvents\":[{\"name\":\"e\",\"ph\":\"i\","
                 "\"pid\":1,\"tid\":1,\"ts\":42}]}"},
  };
  const auto merged = parse_chrome_trace(stitch_chrome_traces(parts).json);
  ASSERT_TRUE(merged.has_value());
  ASSERT_EQ(merged->events.size(), 2u);
  EXPECT_EQ(merged->events[1].ts, 42);
}

}  // namespace
}  // namespace appclass::obs
