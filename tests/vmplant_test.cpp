#include <gtest/gtest.h>

#include "vmplant/plant.hpp"

namespace appclass::vmplant {
namespace {

TEST(ConfigDag, TopologicalOrderRespectsDependencies) {
  ConfigDag dag;
  const auto a = dag.add(ConfigAction{"a", 1.0, 0.0, {}});
  const auto b = dag.add(ConfigAction{"b", 1.0, 0.0, {}});
  const auto c = dag.add(ConfigAction{"c", 1.0, 0.0, {}});
  dag.add_dependency(b, a);  // b before a
  dag.add_dependency(a, c);
  const auto order = dag.topological_order();
  ASSERT_EQ(order.size(), 3u);
  const auto pos = [&](ActionId id) {
    return std::find(order.begin(), order.end(), id) - order.begin();
  };
  EXPECT_LT(pos(b), pos(a));
  EXPECT_LT(pos(a), pos(c));
  EXPECT_TRUE(dag.valid());
}

TEST(ConfigDag, CycleIsInvalid) {
  ConfigDag dag;
  const auto a = dag.add(ConfigAction{"a", 1.0, 0.0, {}});
  const auto b = dag.add(ConfigAction{"b", 1.0, 0.0, {}});
  dag.add_dependency(a, b);
  dag.add_dependency(b, a);
  EXPECT_FALSE(dag.valid());
  EXPECT_TRUE(dag.topological_order().empty());
}

TEST(ConfigDag, EmptyDagIsValid) {
  const ConfigDag dag;
  EXPECT_TRUE(dag.valid());
  EXPECT_DOUBLE_EQ(dag.total_duration_s(), 0.0);
}

TEST(ConfigDag, DurationsAndCriticalPath) {
  ConfigDag dag;
  const auto a = dag.add(ConfigAction{"a", 10.0, 0.0, {}});
  const auto b = dag.add(ConfigAction{"b", 5.0, 0.0, {}});
  const auto c = dag.add(ConfigAction{"c", 7.0, 0.0, {}});
  dag.add_dependency(a, c);  // chain a->c = 17; b parallel = 5
  (void)b;
  EXPECT_DOUBLE_EQ(dag.total_duration_s(), 22.0);
  EXPECT_DOUBLE_EQ(dag.critical_path_s(), 17.0);
}

TEST(ConfigDag, RamDeltaAccumulates) {
  ConfigDag dag;
  dag.add(ConfigAction{"grow", 1.0, 256.0, {}});
  dag.add(ConfigAction{"shrink", 1.0, -64.0, {}});
  EXPECT_DOUBLE_EQ(dag.total_ram_delta_mb(), 192.0);
}

TEST(ConfigDag, SequenceKeyIsContentBased) {
  const ConfigDag a = make_app_environment_dag("specseis");
  const ConfigDag b = make_app_environment_dag("specseis");
  const ConfigDag c = make_app_environment_dag("postmark");
  EXPECT_EQ(a.sequence_key(), b.sequence_key());
  EXPECT_NE(a.sequence_key(), c.sequence_key());
}

TEST(ConfigDag, PrefixKeysDifferByLength) {
  const ConfigDag dag = make_app_environment_dag("specseis");
  EXPECT_NE(dag.prefix_key(1), dag.prefix_key(2));
}

TEST(VmPlant, ProvisionAppliesRamDelta) {
  VmPlant plant;
  plant.register_image(make_standard_image());
  CloneRequest req;
  req.image = "worker-256mb";
  req.config = make_app_environment_dag("specseis", /*extra_ram_mb=*/256.0);
  req.vm_name = "vm-seis";
  req.vm_ip = "10.0.0.50";
  const CloneResult result = plant.provision(req);
  EXPECT_DOUBLE_EQ(result.spec.ram_mb, 512.0);
  EXPECT_EQ(result.spec.name, "vm-seis");
  EXPECT_FALSE(result.from_cache);
  // base 90 + mount 4 + install 25 + input 2 + set-memory 1.
  EXPECT_DOUBLE_EQ(result.provision_s, 122.0);
}

TEST(VmPlant, SecondCloneHitsCache) {
  VmPlant plant;
  plant.register_image(make_standard_image());
  CloneRequest req;
  req.image = "worker-256mb";
  req.config = make_app_environment_dag("postmark");
  req.vm_name = "vm-a";
  req.vm_ip = "10.0.0.51";
  const CloneResult first = plant.provision(req);
  req.vm_name = "vm-b";
  const CloneResult second = plant.provision(req);
  EXPECT_FALSE(first.from_cache);
  EXPECT_TRUE(second.from_cache);
  EXPECT_EQ(second.cached_actions, req.config.size());
  EXPECT_LT(second.provision_s, first.provision_s);
  // Fully cached: only the base clone remains.
  EXPECT_DOUBLE_EQ(second.provision_s, 90.0);
}

TEST(VmPlant, SharedPrefixPartiallyCached) {
  VmPlant plant;
  plant.register_image(make_standard_image());
  CloneRequest seis;
  seis.image = "worker-256mb";
  seis.config = make_app_environment_dag("specseis");
  seis.vm_name = "a";
  seis.vm_ip = "10.0.0.52";
  plant.provision(seis);

  // A different app shares only the "mount:/scratch" first action.
  CloneRequest pm;
  pm.image = "worker-256mb";
  pm.config = make_app_environment_dag("postmark");
  pm.vm_name = "b";
  pm.vm_ip = "10.0.0.53";
  const CloneResult result = plant.provision(pm);
  EXPECT_TRUE(result.from_cache);
  EXPECT_EQ(result.cached_actions, 1u);  // the mount step
  EXPECT_DOUBLE_EQ(result.provision_s, 90.0 + 25.0 + 2.0);
}

TEST(VmPlant, InstantiateRegistersVmWithEngine) {
  VmPlant plant;
  plant.register_image(make_standard_image());
  sim::Engine engine(1);
  const auto host = engine.add_host(sim::make_host_a_spec());
  CloneRequest req;
  req.image = "worker-256mb";
  req.config = make_app_environment_dag("ch3d");
  req.vm_name = "vm-ch3d";
  req.vm_ip = "10.0.0.60";
  const auto [vm, result] = plant.instantiate(engine, host, req);
  EXPECT_EQ(engine.vm_count(), 1u);
  EXPECT_EQ(engine.vm(vm).spec().ip, "10.0.0.60");
  EXPECT_GT(result.provision_s, 90.0);
}

TEST(VmPlant, ImageRegistry) {
  VmPlant plant;
  EXPECT_FALSE(plant.has_image("worker-256mb"));
  plant.register_image(make_standard_image());
  EXPECT_TRUE(plant.has_image("worker-256mb"));
  EXPECT_EQ(plant.image_count(), 1u);
}

}  // namespace
}  // namespace appclass::vmplant
