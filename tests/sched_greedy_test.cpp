#include "sched/greedy.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace appclass::sched {
namespace {

using core::ApplicationClass;

PlacementProblem paper_problem() {
  PlacementProblem p;
  for (int i = 0; i < 3; ++i) {
    p.jobs.push_back({"specseis_small", ApplicationClass::kCpu});
    p.jobs.push_back({"postmark", ApplicationClass::kIo});
    p.jobs.push_back({"netpipe", ApplicationClass::kNetwork});
  }
  p.vm_count = 3;
  p.slots_per_vm = 3;
  return p;
}

void expect_valid(const PlacementProblem& problem,
                  const Placement& placement) {
  ASSERT_EQ(placement.size(), problem.vm_count);
  std::set<std::size_t> seen;
  for (const auto& vm : placement) {
    EXPECT_LE(vm.size(), problem.slots_per_vm);
    for (const std::size_t j : vm) {
      EXPECT_LT(j, problem.jobs.size());
      EXPECT_TRUE(seen.insert(j).second) << "job placed twice";
    }
  }
  EXPECT_EQ(seen.size(), problem.jobs.size());
}

TEST(Greedy, PaperMixGetsPerfectSpread) {
  const auto problem = paper_problem();
  const auto placement = greedy_place(problem);
  expect_valid(problem, placement);
  EXPECT_EQ(overlap_penalty(problem, placement), 0);
  // Each VM holds one job of each class (the SPN schedule).
  for (const auto& vm : placement) {
    std::set<ApplicationClass> classes;
    for (const std::size_t j : vm) classes.insert(problem.jobs[j].cls);
    EXPECT_EQ(classes.size(), 3u);
  }
}

TEST(Greedy, OverlapPenaltyCountsSameClassPairs) {
  const auto problem = paper_problem();
  // Segregated placement: {0,3,6} are cpu, {1,4,7} io, {2,5,8} net.
  const Placement segregated = {{0, 3, 6}, {1, 4, 7}, {2, 5, 8}};
  EXPECT_EQ(overlap_penalty(problem, segregated), 9);  // 3 per VM
  const Placement mixed = {{0, 1, 2}, {3, 4, 5}, {6, 7, 8}};
  EXPECT_EQ(overlap_penalty(problem, mixed), 0);
}

TEST(Greedy, UnbalancedMixStillSpreadsHeaviestClass) {
  PlacementProblem p;
  for (int i = 0; i < 6; ++i)
    p.jobs.push_back({"postmark", ApplicationClass::kIo});
  p.jobs.push_back({"ch3d", ApplicationClass::kCpu});
  p.jobs.push_back({"netpipe", ApplicationClass::kNetwork});
  p.vm_count = 4;
  p.slots_per_vm = 2;
  const auto placement = greedy_place(p);
  expect_valid(p, placement);
  // 6 io jobs over 4 VMs: best possible is two VMs with an io pair.
  EXPECT_EQ(overlap_penalty(p, placement), 2);
}

TEST(Greedy, SingleVmTakesEverything) {
  PlacementProblem p;
  p.jobs.push_back({"ch3d", ApplicationClass::kCpu});
  p.jobs.push_back({"postmark", ApplicationClass::kIo});
  p.vm_count = 1;
  p.slots_per_vm = 2;
  const auto placement = greedy_place(p);
  expect_valid(p, placement);
  EXPECT_EQ(placement[0].size(), 2u);
}

TEST(Greedy, DeterministicPlacement) {
  const auto problem = paper_problem();
  EXPECT_EQ(greedy_place(problem), greedy_place(problem));
}

TEST(RandomPlace, ValidAndSeedDependent) {
  const auto problem = paper_problem();
  linalg::Rng rng(5);
  const auto a = random_place(problem, rng);
  expect_valid(problem, a);
  linalg::Rng rng2(6);
  const auto b = random_place(problem, rng2);
  expect_valid(problem, b);
  // Different seeds almost surely differ.
  EXPECT_NE(a, b);
}

TEST(PlacementThroughput, SumsInverseElapsed) {
  EXPECT_DOUBLE_EQ(placement_throughput({86400, 43200}), 3.0);
}

TEST(SimulatePlacement, GreedyBeatsWorstCase) {
  const auto problem = paper_problem();
  const auto greedy = greedy_place(problem);
  const Placement segregated = {{0, 3, 6}, {1, 4, 7}, {2, 5, 8}};
  const auto greedy_elapsed = simulate_placement(problem, greedy, 7);
  const auto seg_elapsed = simulate_placement(problem, segregated, 7);
  EXPECT_GT(placement_throughput(greedy_elapsed),
            1.1 * placement_throughput(seg_elapsed));
}

TEST(SimulatePlacement, ReturnsElapsedPerJobInOrder) {
  PlacementProblem p;
  p.jobs.push_back({"postmark", ApplicationClass::kIo});
  p.jobs.push_back({"ch3d", ApplicationClass::kCpu});
  p.vm_count = 2;
  p.slots_per_vm = 1;
  const Placement placement = {{0}, {1}};
  const auto elapsed = simulate_placement(p, placement, 9);
  ASSERT_EQ(elapsed.size(), 2u);
  EXPECT_GT(elapsed[0], 150);  // postmark ~250 s
  EXPECT_LT(elapsed[0], 400);
  EXPECT_GT(elapsed[1], 250);  // ch3d ~490 s on host A / ~370 on host B
}

}  // namespace
}  // namespace appclass::sched
