#include "core/pipeline.hpp"

#include <gtest/gtest.h>

#include "core_test_util.hpp"
#include "obs/metrics.hpp"

namespace appclass::core {
namespace {

class PipelineTest : public ::testing::Test {
 protected:
  void SetUp() override { pipeline_.train(testing::synthetic_training()); }
  ClassificationPipeline pipeline_;
};

TEST_F(PipelineTest, TrainedStateAndDimensions) {
  EXPECT_TRUE(pipeline_.trained());
  EXPECT_EQ(pipeline_.pca().components(), 2u);
  EXPECT_EQ(pipeline_.knn().dimension(), 2u);
  EXPECT_EQ(pipeline_.knn().training_size(), 5u * 40u);
}

TEST_F(PipelineTest, ClassifiesEachSyntheticClassCorrectly) {
  for (std::size_t c = 0; c < kClassCount; ++c) {
    const auto cls = class_from_index(c);
    const auto pool = testing::synthetic_pool(cls, 30, 100 + c);
    const auto result = pipeline_.classify(pool);
    EXPECT_EQ(result.application_class, cls)
        << "expected " << to_string(cls) << " got "
        << to_string(result.application_class);
    EXPECT_GT(result.composition.fraction(cls), 0.8);
  }
}

TEST_F(PipelineTest, ClassVectorLengthMatchesPool) {
  const auto pool = testing::synthetic_pool(ApplicationClass::kIo, 17, 9);
  const auto result = pipeline_.classify(pool);
  EXPECT_EQ(result.class_vector.size(), 17u);
  EXPECT_EQ(result.projected.rows(), 17u);
  EXPECT_EQ(result.projected.cols(), 2u);
  EXPECT_EQ(result.composition.samples(), 17u);
}

TEST_F(PipelineTest, CompositionMatchesClassVector) {
  const auto pool = testing::synthetic_pool(ApplicationClass::kCpu, 25, 10);
  const auto result = pipeline_.classify(pool);
  std::size_t cpu_count = 0;
  for (auto c : result.class_vector)
    cpu_count += (c == ApplicationClass::kCpu);
  EXPECT_DOUBLE_EQ(result.composition.fraction(ApplicationClass::kCpu),
                   static_cast<double>(cpu_count) / 25.0);
}

TEST_F(PipelineTest, OnlineSnapshotMatchesBatch) {
  const auto pool = testing::synthetic_pool(ApplicationClass::kNetwork, 10, 11);
  const auto batch = pipeline_.classify(pool);
  for (std::size_t i = 0; i < pool.size(); ++i)
    EXPECT_EQ(pipeline_.classify(pool[i]), batch.class_vector[i]);
}

TEST_F(PipelineTest, ProjectMatchesClassifyProjection) {
  const auto pool = testing::synthetic_pool(ApplicationClass::kMemory, 8, 12);
  const auto proj = pipeline_.project(pool);
  const auto result = pipeline_.classify(pool);
  EXPECT_LT(proj.max_abs_diff(result.projected), 1e-12);
}

TEST_F(PipelineTest, MixedPoolYieldsMixedComposition) {
  metrics::DataPool mixed("10.0.0.1");
  linalg::Rng rng(13);
  for (int i = 0; i < 30; ++i)
    mixed.add(testing::synthetic_snapshot(
        i < 20 ? ApplicationClass::kIo : ApplicationClass::kIdle, rng,
        5 * i));
  const auto result = pipeline_.classify(mixed);
  EXPECT_EQ(result.application_class, ApplicationClass::kIo);
  EXPECT_NEAR(result.composition.fraction(ApplicationClass::kIo), 2.0 / 3.0,
              0.15);
  EXPECT_NEAR(result.composition.fraction(ApplicationClass::kIdle), 1.0 / 3.0,
              0.15);
}

TEST(Pipeline, CustomMetricSelection) {
  PipelineOptions options;
  options.selected_metrics = {metrics::MetricId::kCpuUser,
                              metrics::MetricId::kIoBi};
  options.pca.forced_components = 1;
  ClassificationPipeline pipeline(options);
  pipeline.train(testing::synthetic_training());
  EXPECT_EQ(pipeline.preprocessor().dimension(), 2u);
  EXPECT_EQ(pipeline.pca().components(), 1u);
  // CPU vs IO are still separable on those two metrics alone.
  const auto cpu = testing::synthetic_pool(ApplicationClass::kCpu, 20, 55);
  EXPECT_EQ(pipeline.classify(cpu).application_class, ApplicationClass::kCpu);
}

TEST(Pipeline, VarianceThresholdPathSelectsComponents) {
  PipelineOptions options;
  options.pca.forced_components = 0;
  options.pca.min_fraction_variance = 0.55;
  ClassificationPipeline pipeline(options);
  pipeline.train(testing::synthetic_training());
  EXPECT_GE(pipeline.pca().components(), 1u);
  EXPECT_GE(pipeline.pca().captured_variance(), 0.55);
}

// The registry is process-global and other tests in this binary also
// classify, so all observability assertions work on before/after deltas.
TEST(PipelineObservability, TrainAndClassifyPopulateStageHistograms) {
  auto& registry = obs::MetricsRegistry::global();
  const auto hist_count = [&](const char* stage) -> std::uint64_t {
    const auto* h = registry.snapshot().find_histogram(
        "appclass_stage_seconds", {{"stage", stage}});
    return h ? h->count : 0;
  };
  const auto counter_value = [&](const char* name) -> std::uint64_t {
    const auto* c = registry.snapshot().find_counter(name);
    return c ? c->value : 0;
  };

  const std::uint64_t preprocess0 = hist_count("preprocess");
  const std::uint64_t pca_fit0 = hist_count("pca_fit");
  const std::uint64_t pca_project0 = hist_count("pca_project");
  const std::uint64_t knn0 = hist_count("knn_query");
  const std::uint64_t vote0 = hist_count("vote");
  const std::uint64_t trains0 = counter_value("appclass_pipeline_train_total");
  const std::uint64_t snaps0 =
      counter_value("appclass_pipeline_snapshots_classified_total");

  ClassificationPipeline pipeline;
  pipeline.train(testing::synthetic_training());
  const auto pool = testing::synthetic_pool(ApplicationClass::kCpu, 23, 7);
  const auto result = pipeline.classify(pool);
  ASSERT_EQ(result.class_vector.size(), 23u);

  // Every stage histogram gained observations...
  EXPECT_GT(hist_count("preprocess"), preprocess0);
  EXPECT_GT(hist_count("pca_fit"), pca_fit0);
  EXPECT_GT(hist_count("pca_project"), pca_project0);
  EXPECT_GT(hist_count("vote"), vote0);
  // ...and knn_query advanced by exactly one count per snapshot.
  EXPECT_EQ(hist_count("knn_query"), knn0 + 23u);
  EXPECT_EQ(counter_value("appclass_pipeline_train_total"), trains0 + 1u);
  EXPECT_EQ(counter_value("appclass_pipeline_snapshots_classified_total"),
            snaps0 + 23u);

  // The per-snapshot (online) path counts snapshots too.
  const std::uint64_t snaps1 =
      counter_value("appclass_pipeline_snapshots_classified_total");
  (void)pipeline.classify(pool[0]);
  EXPECT_EQ(counter_value("appclass_pipeline_snapshots_classified_total"),
            snaps1 + 1u);
}

TEST(Pipeline, LargerKStillSeparatesCleanClusters) {
  PipelineOptions options;
  options.knn.k = 9;
  ClassificationPipeline pipeline(options);
  pipeline.train(testing::synthetic_training());
  const auto net = testing::synthetic_pool(ApplicationClass::kNetwork, 15, 77);
  EXPECT_EQ(pipeline.classify(net).application_class,
            ApplicationClass::kNetwork);
}

}  // namespace
}  // namespace appclass::core
