#include "core/appdb.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace appclass::core {
namespace {

RunRecord make_run(const std::string& app, const std::string& config,
                   ApplicationClass cls, std::int64_t elapsed,
                   double dominant_fraction = 0.9) {
  RunRecord r;
  r.application = app;
  r.config = config;
  std::array<double, kClassCount> fr{};
  fr[index_of(cls)] = dominant_fraction;
  fr[index_of(ApplicationClass::kIdle)] += 1.0 - dominant_fraction;
  r.composition = ClassComposition::from_fractions(fr, 100);
  r.application_class = cls;
  r.elapsed_seconds = elapsed;
  r.samples = 100;
  return r;
}

TEST(AppDb, RecordAndCount) {
  ApplicationDatabase db;
  EXPECT_EQ(db.size(), 0u);
  db.record(make_run("postmark", "vm1", ApplicationClass::kIo, 260));
  EXPECT_EQ(db.size(), 1u);
}

TEST(AppDb, ProfileAggregatesRuns) {
  ApplicationDatabase db;
  db.record(make_run("postmark", "vm1", ApplicationClass::kIo, 250, 0.9));
  db.record(make_run("postmark", "vm1", ApplicationClass::kIo, 270, 0.8));
  const auto p = db.profile("postmark", "vm1");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->runs, 2u);
  EXPECT_DOUBLE_EQ(p->elapsed.mean(), 260.0);
  EXPECT_DOUBLE_EQ(p->mean_fractions[index_of(ApplicationClass::kIo)], 0.85);
  EXPECT_EQ(p->typical_class, ApplicationClass::kIo);
}

TEST(AppDb, TypicalClassIsModeAcrossRuns) {
  ApplicationDatabase db;
  db.record(make_run("specseis", "32MB", ApplicationClass::kCpu, 25000));
  db.record(make_run("specseis", "32MB", ApplicationClass::kIo, 26000));
  db.record(make_run("specseis", "32MB", ApplicationClass::kIo, 25500));
  EXPECT_EQ(db.typical_class("specseis", "32MB"), ApplicationClass::kIo);
}

TEST(AppDb, ConfigKeySeparatesEnvironments) {
  // The paper's key insight: the same binary can belong to different
  // classes under different execution environments.
  ApplicationDatabase db;
  db.record(make_run("specseis", "256MB", ApplicationClass::kCpu, 17500));
  db.record(make_run("specseis", "32MB", ApplicationClass::kIo, 25600));
  EXPECT_EQ(db.typical_class("specseis", "256MB"), ApplicationClass::kCpu);
  EXPECT_EQ(db.typical_class("specseis", "32MB"), ApplicationClass::kIo);
}

TEST(AppDb, UnknownPairReturnsNullopt) {
  const ApplicationDatabase db;
  EXPECT_FALSE(db.profile("nope", "cfg").has_value());
  EXPECT_FALSE(db.typical_class("nope", "cfg").has_value());
}

TEST(AppDb, AllProfilesListsDistinctPairs) {
  ApplicationDatabase db;
  db.record(make_run("a", "c1", ApplicationClass::kCpu, 10));
  db.record(make_run("a", "c1", ApplicationClass::kCpu, 12));
  db.record(make_run("a", "c2", ApplicationClass::kIo, 20));
  db.record(make_run("b", "c1", ApplicationClass::kIdle, 30));
  const auto profiles = db.all_profiles();
  EXPECT_EQ(profiles.size(), 3u);
}

TEST(AppDb, CsvRoundTrip) {
  ApplicationDatabase db;
  db.record(make_run("postmark", "vm1-256MB", ApplicationClass::kIo, 260));
  db.record(make_run("vmd", "vm1-256MB", ApplicationClass::kIdle, 430, 0.4));
  const std::string csv = db.to_csv();
  const ApplicationDatabase restored = ApplicationDatabase::from_csv(csv);
  ASSERT_EQ(restored.size(), 2u);
  EXPECT_EQ(restored.runs()[0].application, "postmark");
  EXPECT_EQ(restored.runs()[1].application_class, ApplicationClass::kIdle);
  EXPECT_EQ(restored.runs()[0].elapsed_seconds, 260);
  EXPECT_NEAR(
      restored.runs()[0].composition.fraction(ApplicationClass::kIo), 0.9,
      1e-9);
}

TEST(AppDb, CsvRejectsGarbage) {
  EXPECT_THROW(ApplicationDatabase::from_csv(""), std::runtime_error);
  EXPECT_THROW(ApplicationDatabase::from_csv("header\nonly,two\n"),
               std::runtime_error);
  EXPECT_THROW(
      ApplicationDatabase::from_csv(
          "h\napp,cfg,wrongclass,1,1,0,0,0,0,0\n"),
      std::runtime_error);
}

TEST(AppDb, ElapsedStatsTrackSpread) {
  ApplicationDatabase db;
  db.record(make_run("a", "c", ApplicationClass::kCpu, 100));
  db.record(make_run("a", "c", ApplicationClass::kCpu, 200));
  const auto p = db.profile("a", "c");
  EXPECT_DOUBLE_EQ(p->elapsed.min(), 100.0);
  EXPECT_DOUBLE_EQ(p->elapsed.max(), 200.0);
  EXPECT_DOUBLE_EQ(p->elapsed.stddev(), 50.0);
}

}  // namespace
}  // namespace appclass::core
