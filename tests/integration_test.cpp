// End-to-end integration tests: simulated testbed -> Ganglia-style
// monitoring -> profiler -> trained classifier -> application database ->
// cost model / class-aware scheduling. These exercise the full paper
// pipeline rather than individual modules.
#include <gtest/gtest.h>

#include "core/cost_model.hpp"
#include "core/trainer.hpp"
#include "monitor/harness.hpp"
#include "sched/policy.hpp"
#include "sim/testbed.hpp"
#include "workloads/catalog.hpp"

namespace appclass {
namespace {

/// Shared trained pipeline (training runs the simulator; do it once).
const core::ClassificationPipeline& pipeline() {
  static const core::ClassificationPipeline p = core::make_trained_pipeline();
  return p;
}

core::ClassificationResult classify_app(const std::string& app,
                                        double vm_ram_mb = 256.0,
                                        std::uint64_t seed = 77,
                                        std::int64_t* elapsed = nullptr) {
  sim::TestbedOptions opts;
  opts.seed = seed;
  opts.vm1_ram_mb = vm_ram_mb;
  opts.four_vms = false;
  sim::Testbed tb = sim::make_testbed(opts);
  monitor::ClusterMonitor mon(*tb.engine);
  const auto id = tb.engine->submit(
      tb.vm1, workloads::make_by_name(app, static_cast<int>(tb.vm4)));
  const auto run = monitor::profile_instance(*tb.engine, mon, id, 5);
  EXPECT_TRUE(run.completed) << app;
  if (elapsed) *elapsed = run.elapsed();
  return pipeline().classify(run.pool);
}

TEST(EndToEnd, TrainingPoolsCoverAllFiveClasses) {
  const auto pools = core::collect_training_pools();
  ASSERT_EQ(pools.size(), core::kClassCount);
  for (std::size_t c = 0; c < core::kClassCount; ++c) {
    EXPECT_EQ(pools[c].label, core::class_from_index(c));
    EXPECT_GT(pools[c].pool.size(), 10u);
  }
}

TEST(EndToEnd, TrainingDataSelfClassifiesAccurately) {
  const auto pools = core::collect_training_pools();
  for (const auto& lp : pools) {
    const auto result = pipeline().classify(lp.pool);
    EXPECT_EQ(result.application_class, lp.label);
    EXPECT_GT(result.composition.fraction(lp.label), 0.75)
        << core::to_string(lp.label);
  }
}

TEST(EndToEnd, CpuBenchmarksClassifyCpu) {
  EXPECT_EQ(classify_app("ch3d").application_class,
            core::ApplicationClass::kCpu);
  EXPECT_EQ(classify_app("simplescalar").application_class,
            core::ApplicationClass::kCpu);
}

TEST(EndToEnd, IoBenchmarksClassifyIo) {
  EXPECT_EQ(classify_app("postmark").application_class,
            core::ApplicationClass::kIo);
  EXPECT_EQ(classify_app("bonnie").application_class,
            core::ApplicationClass::kIo);
}

TEST(EndToEnd, NetworkBenchmarksClassifyNetwork) {
  for (const char* app : {"netpipe", "autobench", "sftp", "postmark_nfs"})
    EXPECT_EQ(classify_app(app).application_class,
              core::ApplicationClass::kNetwork)
        << app;
}

TEST(EndToEnd, EnvironmentFlipsPostmarkClass) {
  // Table 3: local directory -> IO; NFS-mounted directory -> network.
  EXPECT_EQ(classify_app("postmark").application_class,
            core::ApplicationClass::kIo);
  EXPECT_EQ(classify_app("postmark_nfs").application_class,
            core::ApplicationClass::kNetwork);
}

TEST(EndToEnd, SmallMemoryVmShiftsSpecseisTowardIoAndPaging) {
  std::int64_t elapsed_big = 0, elapsed_small = 0;
  const auto big = classify_app("specseis_medium", 256.0, 5, &elapsed_big);
  const auto small = classify_app("specseis_medium", 32.0, 5, &elapsed_small);
  EXPECT_GT(big.composition.fraction(core::ApplicationClass::kCpu), 0.95);
  // In the 32 MB VM a large share of snapshots become IO / paging...
  EXPECT_GT(small.composition.fraction(core::ApplicationClass::kIo) +
                small.composition.fraction(core::ApplicationClass::kMemory),
            0.25);
  // ...and the run takes substantially longer (paper: 291 -> 426 min).
  EXPECT_GT(elapsed_small, elapsed_big);
}

TEST(EndToEnd, InteractiveAppIsAMixture) {
  const auto vmd = classify_app("vmd");
  int nonzero = 0;
  for (double f : vmd.composition.fractions()) nonzero += (f > 0.05);
  EXPECT_GE(nonzero, 3);  // idle + IO + network, like Figure 3(d)
}

TEST(EndToEnd, DatabaseDrivenScheduling) {
  // Learn classes from historical runs, store them, then let the
  // class-aware policy pick the schedule from the database alone.
  core::ApplicationDatabase db;
  const std::map<char, std::string> code_to_app = {
      {'S', "specseis_small"}, {'P', "postmark"}, {'N', "netpipe"}};
  for (const auto& [code, app] : code_to_app) {
    std::int64_t elapsed = 0;
    const auto result = classify_app(app, 256.0, 99, &elapsed);
    core::RunRecord run;
    run.application = app;
    run.config = "vm-256MB";
    run.composition = result.composition;
    run.application_class = result.application_class;
    run.elapsed_seconds = elapsed;
    run.samples = result.composition.samples();
    db.record(run);
  }
  const auto classes = sched::classes_from_database(db, code_to_app,
                                                    "vm-256MB");
  ASSERT_TRUE(classes.has_value());
  const auto schedules =
      sched::enumerate_schedules({{'S', 3}, {'P', 3}, {'N', 3}}, 3, 3);
  const auto& pick = sched::pick_class_aware(schedules, *classes);
  EXPECT_EQ(sched::to_string(pick.schedule), "{(NPS),(NPS),(NPS)}");
}

TEST(EndToEnd, CostModelPricesLearnedRuns) {
  std::int64_t elapsed = 0;
  const auto result = classify_app("postmark", 256.0, 42, &elapsed);
  core::RunRecord run;
  run.application = "postmark";
  run.composition = result.composition;
  run.application_class = result.application_class;
  run.elapsed_seconds = elapsed;
  const core::CostModel model(
      core::UnitCosts{.cpu = 1.0, .memory = 2.0, .io = 3.0, .network = 1.5});
  const double cost = model.run_cost(run);
  // PostMark is ~all IO: cost per second close to the IO price.
  EXPECT_NEAR(cost / static_cast<double>(elapsed), 3.0, 0.4);
}

TEST(EndToEnd, OnlineClassificationDuringRun) {
  // Classify snapshots as they stream from the bus (online mode), then
  // check the live majority matches the offline result.
  sim::TestbedOptions opts;
  opts.seed = 123;
  opts.four_vms = false;
  sim::Testbed tb = sim::make_testbed(opts);
  monitor::ClusterMonitor mon(*tb.engine);
  tb.engine->submit(tb.vm1, workloads::make_postmark());
  std::vector<core::ApplicationClass> live;
  mon.bus().subscribe([&](const metrics::Snapshot& s) {
    if (s.node_ip == "10.0.0.1" && s.time % 5 == 0)
      live.push_back(pipeline().classify(s));
  });
  tb.engine->run_until_done(10000);
  ASSERT_GT(live.size(), 20u);
  EXPECT_EQ(core::majority_vote(live), core::ApplicationClass::kIo);
}

}  // namespace
}  // namespace appclass
