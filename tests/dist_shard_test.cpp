// Consistent-hash shard map: cross-instance determinism, range, rough
// balance, and the minimal-remap property that justifies a hash ring
// over modular hashing.
#include "dist/shard.hpp"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

namespace appclass::dist {
namespace {

std::vector<std::string> synthetic_ips(std::size_t count) {
  std::vector<std::string> ips;
  ips.reserve(count);
  for (std::size_t i = 0; i < count; ++i)
    ips.push_back("10." + std::to_string(i / 200) + "." +
                  std::to_string((i / 50) % 4) + "." +
                  std::to_string(i % 50 + 1));
  return ips;
}

TEST(DistShard, DeterministicAcrossInstances) {
  // Two independently constructed maps must agree on every placement —
  // the property that lets any process recompute the topology.
  const ShardMap a(5);
  const ShardMap b(5);
  for (const auto& ip : synthetic_ips(500))
    EXPECT_EQ(a.shard_for(ip), b.shard_for(ip)) << ip;
}

TEST(DistShard, PlacementsCoverTheShardRangeOnly) {
  const ShardMap map(3);
  std::map<std::size_t, std::size_t> counts;
  for (const auto& ip : synthetic_ips(1000)) {
    const std::size_t shard = map.shard_for(ip);
    ASSERT_LT(shard, map.shards());
    ++counts[shard];
  }
  // Every shard receives some keys.
  EXPECT_EQ(counts.size(), 3u);
}

TEST(DistShard, VirtualNodesKeepTheSpreadRough) {
  // With 64 vnodes per shard the balance is rough, not tight (observed
  // ~±50% of fair share on this key set): assert no shard starves below
  // a third of fair or hogs past triple, which modular-hash failure
  // modes (one shard taking ~everything) would still trip.
  const ShardMap map(4);
  std::vector<std::size_t> counts(4, 0);
  const auto ips = synthetic_ips(2000);
  for (const auto& ip : ips) ++counts[map.shard_for(ip)];
  const std::size_t fair = ips.size() / counts.size();
  for (std::size_t s = 0; s < counts.size(); ++s) {
    EXPECT_GT(counts[s], fair / 3) << "shard " << s << " starved";
    EXPECT_LT(counts[s], fair * 3) << "shard " << s << " hogged";
  }
}

TEST(DistShard, AddingAShardRemapsOnlyAFraction) {
  // The ring's reason to exist: growing 4 -> 5 shards should move about
  // 1/5 of the keys, not reshuffle nearly all of them (modular hashing
  // moves ~4/5). Assert well under half move.
  const ShardMap before(4);
  const ShardMap after(5);
  const auto ips = synthetic_ips(2000);
  std::size_t moved = 0;
  for (const auto& ip : ips)
    if (before.shard_for(ip) != after.shard_for(ip)) ++moved;
  EXPECT_GT(moved, 0u);
  EXPECT_LT(moved, ips.size() / 2);
}

TEST(DistShard, SingleShardOwnsEverything) {
  const ShardMap map(1);
  for (const auto& ip : synthetic_ips(100))
    EXPECT_EQ(map.shard_for(ip), 0u);
}

TEST(DistShard, ReplayNodeIpsSpreadAcrossThreeShards) {
  // The topology the CI smoke runs: five replayed canonical runs
  // ("10.0.<r>.1") over three workers. Placement is deterministic, so
  // this pins the property the bit-identical check depends on: at least
  // two distinct shards are exercised.
  const ShardMap map(3);
  std::map<std::size_t, std::size_t> counts;
  for (std::size_t r = 0; r < 5; ++r)
    ++counts[map.shard_for("10.0." + std::to_string(r) + ".1")];
  EXPECT_GE(counts.size(), 2u);
}

}  // namespace
}  // namespace appclass::dist
