// Model-health observability primitives: bounded label cardinality, the
// PSI drift detector (determinism, hysteresis, stationary silence), and
// the ModelHealth aggregator's scorecards.
#include "obs/health.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "obs/cardinality.hpp"
#include "obs/drift.hpp"

namespace appclass {
namespace {

// ---------------------------------------------------------------- labels

TEST(BoundedLabelSet, AdmitsUpToBudgetThenOverflows) {
  obs::BoundedLabelSet labels(2);
  const std::string& a = labels.admit("a");
  const std::string& b = labels.admit("b");
  const std::string& c = labels.admit("c");
  EXPECT_EQ(a, "a");
  EXPECT_EQ(b, "b");
  EXPECT_EQ(c, "other");
  EXPECT_EQ(&c, &labels.overflow_label());
  EXPECT_EQ(labels.size(), 2u);
  EXPECT_EQ(labels.overflowed(), 1u);
  // Re-admitting a known value returns the same stored string.
  EXPECT_EQ(&labels.admit("a"), &a);
  // Overflowed values stay overflowed even after re-asking; the distinct
  // overflow count does not double-count them.
  EXPECT_EQ(labels.admit("c"), "other");
  EXPECT_EQ(labels.overflowed(), 1u);
}

TEST(BoundedLabelSet, ConcurrentAdmissionStaysBounded) {
  obs::BoundedLabelSet labels(8);
  std::vector<std::thread> threads;
  threads.reserve(4);
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&labels, t] {
      for (int i = 0; i < 100; ++i)
        (void)labels.admit("node-" + std::to_string(t * 100 + i));
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(labels.size(), 8u);
  EXPECT_EQ(labels.overflowed(), 400u - 8u);
}

// ----------------------------------------------------------------- drift

/// Deterministic pseudo-random stream (no global RNG state in tests).
class Lcg {
 public:
  explicit Lcg(std::uint64_t seed) : state_(seed) {}
  /// Uniform double in [0, 1).
  double next() {
    state_ = state_ * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<double>(state_ >> 11) /
           static_cast<double>(1ull << 53);
  }

 private:
  std::uint64_t state_;
};

/// Default-sized windows with a tighter rescore stride. The window/bins
/// ratio matters: stationary PSI noise has mean ~ (bins-1) * (1/window +
/// 1/reference_window) ~= 0.08 here, comfortably under the 0.25 fire
/// threshold; shrinking the window much further would make silence flaky.
obs::DriftOptions small_drift_options() {
  obs::DriftOptions options;
  options.reference_window = 256;
  options.window = 128;
  options.bins = 8;
  options.stride = 4;
  return options;
}

/// Feeds `n` 2-D samples centred at (x, y) with +-0.5 jitter.
void feed(obs::DriftDetector& detector, Lcg& rng, std::size_t n, double x,
          double y) {
  for (std::size_t i = 0; i < n; ++i) {
    const double sample[2] = {x + rng.next() - 0.5, y + rng.next() - 0.5};
    detector.observe(sample);
  }
}

TEST(DriftDetector, StationaryStreamStaysSilent) {
  obs::DriftDetector detector(small_drift_options());
  Lcg rng(1);
  feed(detector, rng, 600, 0.0, 0.0);
  EXPECT_TRUE(detector.reference_ready());
  EXPECT_EQ(detector.events(), 0u);
  EXPECT_FALSE(detector.any_drifting());
  EXPECT_LT(detector.max_score(), detector.options().fire_threshold);
}

TEST(DriftDetector, PhaseChangeFiresOnceAndClearsWithHysteresis) {
  obs::DriftDetector detector(small_drift_options());
  std::size_t fired = 0;
  std::size_t fired_component = 99;
  detector.on_drift([&](std::size_t component, double score) {
    ++fired;
    fired_component = component;
    EXPECT_GE(score, detector.options().fire_threshold);
  });

  Lcg rng(2);
  feed(detector, rng, 450, 0.0, 0.0);  // reference + stable stream
  ASSERT_EQ(detector.events(), 0u);

  // Phase change on component 0 only: the x-cluster jumps far outside
  // the reference quantiles.
  feed(detector, rng, 200, 6.0, 0.0);
  EXPECT_EQ(detector.events(), 1u);
  EXPECT_EQ(fired, 1u);
  EXPECT_EQ(fired_component, 0u);
  EXPECT_TRUE(detector.drifting(0));
  EXPECT_GE(detector.score(0), detector.options().fire_threshold);

  // Still drifted: no re-fire while in the drifting state (hysteresis).
  feed(detector, rng, 200, 6.0, 0.0);
  EXPECT_EQ(detector.events(), 1u);

  // Back to the reference distribution: the state clears...
  feed(detector, rng, 400, 0.0, 0.0);
  EXPECT_FALSE(detector.any_drifting());
  // ...and a second excursion fires a second event (rising edge again).
  feed(detector, rng, 200, 6.0, 0.0);
  EXPECT_EQ(detector.events(), 2u);
}

TEST(DriftDetector, SameStreamSameScoresAndEvents) {
  const auto run = [] {
    obs::DriftDetector detector(small_drift_options());
    Lcg rng(3);
    feed(detector, rng, 400, 0.0, 0.0);
    feed(detector, rng, 200, 4.0, -2.0);
    return std::make_tuple(detector.score(0), detector.score(1),
                           detector.events(), detector.samples_seen());
  };
  const auto first = run();
  const auto second = run();
  // Bit-identical, not approximately equal: the detector is a pure
  // function of the observed stream.
  EXPECT_EQ(first, second);
}

TEST(DriftDetector, ExplicitReferenceSkipsWarmup) {
  obs::DriftOptions options = small_drift_options();
  obs::DriftDetector detector(options);
  Lcg rng(4);
  std::vector<double> reference;
  reference.reserve(2 * options.reference_window);
  for (std::size_t i = 0; i < options.reference_window; ++i) {
    reference.push_back(rng.next() - 0.5);
    reference.push_back(rng.next() - 0.5);
  }
  detector.set_reference(reference, 2);
  EXPECT_TRUE(detector.reference_ready());
  // The stream never spends samples on warmup: a drifted stream fires as
  // soon as the sliding window fills.
  feed(detector, rng, options.window + options.stride, 7.0, 7.0);
  EXPECT_GE(detector.events(), 1u);
}

TEST(DriftDetector, JsonExposesComponentScores) {
  obs::DriftDetector detector(small_drift_options());
  Lcg rng(5);
  feed(detector, rng, 300, 1.0, 2.0);
  const std::string json = detector.to_json();
  EXPECT_NE(json.find("\"reference_ready\":true"), std::string::npos);
  EXPECT_NE(json.find("\"components\":["), std::string::npos);
  EXPECT_NE(json.find("\"component\":1"), std::string::npos);
}

// ---------------------------------------------------------------- health

obs::ModelHealthOptions small_health_options() {
  obs::ModelHealthOptions options;
  options.class_names = {"idle", "cpu", "io"};
  options.top_nodes = 2;
  options.novel_window = 4;
  options.drift = small_drift_options();
  return options;
}

obs::HealthSample make_sample(std::string_view node, std::size_t cls) {
  obs::HealthSample sample;
  sample.node_ip = node;
  sample.class_index = cls;
  sample.confidence = 1.0;
  sample.vote_margin = 1.0;
  return sample;
}

TEST(ModelHealth, PerClassAndPerNodeScorecards) {
  obs::ModelHealth health(small_health_options());
  health.record(make_sample("10.0.0.1", 1));
  health.record(make_sample("10.0.0.1", 1));
  health.record(make_sample("10.0.0.2", 2));

  EXPECT_EQ(health.samples(), 3u);
  const std::string classes = health.classes_json();
  EXPECT_NE(classes.find("\"total_samples\":3"), std::string::npos);
  EXPECT_NE(classes.find("\"class\":\"cpu\",\"samples\":2"),
            std::string::npos);
  const std::string nodes = health.nodes_json();
  EXPECT_NE(nodes.find("\"node\":\"10.0.0.1\",\"samples\":2"),
            std::string::npos);
  EXPECT_NE(nodes.find("\"last_class\":\"io\""), std::string::npos);
}

TEST(ModelHealth, NodeCardinalityIsBoundedIntoOther) {
  obs::ModelHealth health(small_health_options());  // top_nodes = 2
  health.record(make_sample("n1", 0));
  health.record(make_sample("n2", 0));
  health.record(make_sample("n3", 0));
  health.record(make_sample("n4", 0));
  const std::string nodes = health.nodes_json();
  EXPECT_NE(nodes.find("\"tracked\":2"), std::string::npos);
  EXPECT_NE(nodes.find("\"overflowed\":2"), std::string::npos);
  EXPECT_NE(nodes.find("\"node\":\"other\",\"samples\":2"),
            std::string::npos);
}

TEST(ModelHealth, DegradedNodeFlipsStatusTo503Verdict) {
  obs::ModelHealth health(small_health_options());
  health.record(make_sample("n1", 0));
  EXPECT_TRUE(health.status().healthy);

  obs::HealthSample degraded = make_sample("n2", 0);
  degraded.coverage = 0.25;
  degraded.degraded = true;
  degraded.abstained = true;
  health.record(degraded);

  const obs::ModelHealth::Status status = health.status();
  EXPECT_FALSE(status.healthy);
  EXPECT_EQ(status.degraded_nodes, 1u);
  EXPECT_NE(status.reason_json.find("\"status\":\"degraded\""),
            std::string::npos);
  EXPECT_NE(status.reason_json.find("\"node\":\"n2\""), std::string::npos);
  EXPECT_EQ(health.abstained(), 1u);

  // Recovery: the same node reporting healthy coverage clears the status.
  health.record(make_sample("n2", 0));
  EXPECT_TRUE(health.status().healthy);
}

TEST(ModelHealth, NovelFractionTracksRollingWindow) {
  obs::ModelHealth health(small_health_options());  // novel_window = 4
  obs::HealthSample novel = make_sample("n1", 0);
  novel.novel = true;
  health.record(novel);
  health.record(novel);
  EXPECT_DOUBLE_EQ(health.novel_fraction(), 1.0);
  health.record(make_sample("n1", 0));
  health.record(make_sample("n1", 0));
  EXPECT_DOUBLE_EQ(health.novel_fraction(), 0.5);
  // Two more clean samples push the novel ones out of the window.
  health.record(make_sample("n1", 0));
  health.record(make_sample("n1", 0));
  EXPECT_DOUBLE_EQ(health.novel_fraction(), 0.0);
}

TEST(ModelHealth, SummaryLineIsOneLine) {
  obs::ModelHealth health(small_health_options());
  health.record(make_sample("n1", 1));
  const std::string line = health.summary_line();
  EXPECT_EQ(line.find('\n'), std::string::npos);
  EXPECT_NE(line.find("health: samples=1"), std::string::npos);
  EXPECT_NE(line.find("drift_events=0"), std::string::npos);
}

TEST(ModelHealth, DriftFeedReachesDetector) {
  obs::ModelHealth health(small_health_options());
  std::size_t fired = 0;
  health.on_drift([&](std::size_t, double) { ++fired; });
  Lcg rng(6);
  for (int i = 0; i < 450; ++i) {
    obs::HealthSample sample = make_sample("n1", 0);
    const double projected[2] = {rng.next() - 0.5, rng.next() - 0.5};
    sample.projected = projected;
    health.record(sample);
  }
  EXPECT_EQ(health.drift_events(), 0u);
  for (int i = 0; i < 250; ++i) {
    obs::HealthSample sample = make_sample("n1", 0);
    const double projected[2] = {8.0 + rng.next(), rng.next() - 0.5};
    sample.projected = projected;
    health.record(sample);
  }
  EXPECT_GE(health.drift_events(), 1u);
  EXPECT_EQ(fired, health.drift_events());
  EXPECT_NE(health.drift_json().find("\"drifting\":true"),
            std::string::npos);
}

}  // namespace
}  // namespace appclass
