#include "core/evaluation.hpp"

#include <gtest/gtest.h>

#include "core_test_util.hpp"

namespace appclass::core {
namespace {

TEST(ConfusionMatrix, CountsAndAccuracy) {
  ConfusionMatrix cm;
  cm.add(ApplicationClass::kCpu, ApplicationClass::kCpu);
  cm.add(ApplicationClass::kCpu, ApplicationClass::kIo);
  cm.add(ApplicationClass::kIo, ApplicationClass::kIo);
  cm.add(ApplicationClass::kIo, ApplicationClass::kIo);
  EXPECT_EQ(cm.total(), 4u);
  EXPECT_EQ(cm.count(ApplicationClass::kCpu, ApplicationClass::kIo), 1u);
  EXPECT_DOUBLE_EQ(cm.accuracy(), 0.75);
}

TEST(ConfusionMatrix, PrecisionRecallF1) {
  ConfusionMatrix cm;
  // cpu: 2 true, 1 predicted as io.  io: 2 true, 1 predicted as cpu.
  cm.add(ApplicationClass::kCpu, ApplicationClass::kCpu);
  cm.add(ApplicationClass::kCpu, ApplicationClass::kIo);
  cm.add(ApplicationClass::kIo, ApplicationClass::kCpu);
  cm.add(ApplicationClass::kIo, ApplicationClass::kIo);
  EXPECT_DOUBLE_EQ(cm.precision(ApplicationClass::kCpu), 0.5);
  EXPECT_DOUBLE_EQ(cm.recall(ApplicationClass::kCpu), 0.5);
  EXPECT_DOUBLE_EQ(cm.f1(ApplicationClass::kCpu), 0.5);
}

TEST(ConfusionMatrix, VacuousClassesScoreOne) {
  ConfusionMatrix cm;
  cm.add(ApplicationClass::kCpu, ApplicationClass::kCpu);
  EXPECT_DOUBLE_EQ(cm.precision(ApplicationClass::kNetwork), 1.0);
  EXPECT_DOUBLE_EQ(cm.recall(ApplicationClass::kNetwork), 1.0);
}

TEST(ConfusionMatrix, MacroF1IgnoresAbsentClasses) {
  ConfusionMatrix cm;
  cm.add(ApplicationClass::kCpu, ApplicationClass::kCpu);
  cm.add(ApplicationClass::kIo, ApplicationClass::kIo);
  EXPECT_DOUBLE_EQ(cm.macro_f1(), 1.0);
}

TEST(ConfusionMatrix, MergeAddsCounts) {
  ConfusionMatrix a, b;
  a.add(ApplicationClass::kCpu, ApplicationClass::kCpu);
  b.add(ApplicationClass::kCpu, ApplicationClass::kIdle);
  a.merge(b);
  EXPECT_EQ(a.total(), 2u);
  EXPECT_DOUBLE_EQ(a.accuracy(), 0.5);
}

TEST(ConfusionMatrix, ToStringContainsClassNames) {
  ConfusionMatrix cm;
  cm.add(ApplicationClass::kMemory, ApplicationClass::kMemory);
  const std::string s = cm.to_string();
  EXPECT_NE(s.find("memory"), std::string::npos);
  EXPECT_NE(s.find("network"), std::string::npos);
}

TEST(Evaluation, FlattenPreservesCountsAndLabels) {
  const auto pools = testing::synthetic_training(10);
  const auto flat = flatten(pools);
  EXPECT_EQ(flat.size(), 10u * kClassCount);
  EXPECT_EQ(flat.labels.front(), ApplicationClass::kIdle);
  EXPECT_EQ(flat.labels.back(), ApplicationClass::kMemory);
}

TEST(Evaluation, EvaluateOnTrainingDataIsNearPerfect) {
  const auto pools = testing::synthetic_training();
  ClassificationPipeline pipeline;
  pipeline.train(pools);
  const auto cm = evaluate(pipeline, flatten(pools));
  EXPECT_GT(cm.accuracy(), 0.98);
}

TEST(Evaluation, CrossValidationOnSeparableDataIsAccurate) {
  const auto pools = testing::synthetic_training(30);
  const auto cm = cross_validate(pools, PipelineOptions{}, 5, 3);
  EXPECT_EQ(cm.total(), 30u * kClassCount);  // every sample tested once
  EXPECT_GT(cm.accuracy(), 0.95);
  EXPECT_GT(cm.macro_f1(), 0.95);
}

TEST(Evaluation, CrossValidationDeterministicPerSeed) {
  const auto pools = testing::synthetic_training(20);
  const auto a = cross_validate(pools, PipelineOptions{}, 4, 9);
  const auto b = cross_validate(pools, PipelineOptions{}, 4, 9);
  EXPECT_DOUBLE_EQ(a.accuracy(), b.accuracy());
}

}  // namespace
}  // namespace appclass::core
