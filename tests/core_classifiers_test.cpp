#include "core/classifiers.hpp"

#include <gtest/gtest.h>

#include "linalg/random.hpp"

namespace appclass::core {
namespace {

struct Dataset {
  linalg::Matrix points;
  std::vector<ApplicationClass> labels;
};

/// Three Gaussian blobs in 2-D.
Dataset three_blobs(std::size_t per_class, double sigma, std::uint64_t seed) {
  linalg::Rng rng(seed);
  Dataset d;
  d.points = linalg::Matrix(3 * per_class, 2);
  const double centers[3][2] = {{0, 0}, {10, 0}, {0, 10}};
  const ApplicationClass classes[3] = {ApplicationClass::kCpu,
                                       ApplicationClass::kIo,
                                       ApplicationClass::kNetwork};
  for (std::size_t c = 0; c < 3; ++c)
    for (std::size_t i = 0; i < per_class; ++i) {
      const std::size_t r = c * per_class + i;
      d.points(r, 0) = rng.normal(centers[c][0], sigma);
      d.points(r, 1) = rng.normal(centers[c][1], sigma);
      d.labels.push_back(classes[c]);
    }
  return d;
}

TEST(NearestCentroid, CentroidsAreClassMeans) {
  linalg::Matrix points{{0, 0}, {2, 2}, {10, 10}};
  std::vector<ApplicationClass> labels = {ApplicationClass::kCpu,
                                          ApplicationClass::kCpu,
                                          ApplicationClass::kIo};
  NearestCentroidClassifier nc;
  nc.train(points, labels);
  EXPECT_TRUE(nc.has_class(ApplicationClass::kCpu));
  EXPECT_FALSE(nc.has_class(ApplicationClass::kIdle));
  const auto c = nc.centroid(ApplicationClass::kCpu);
  EXPECT_DOUBLE_EQ(c[0], 1.0);
  EXPECT_DOUBLE_EQ(c[1], 1.0);
}

TEST(NearestCentroid, ClassifiesBlobs) {
  const Dataset d = three_blobs(30, 0.5, 1);
  NearestCentroidClassifier nc;
  nc.train(d.points, d.labels);
  EXPECT_EQ(nc.classify(std::vector<double>{0.2, -0.1}),
            ApplicationClass::kCpu);
  EXPECT_EQ(nc.classify(std::vector<double>{9.0, 1.0}),
            ApplicationClass::kIo);
  EXPECT_EQ(nc.classify(std::vector<double>{1.0, 9.5}),
            ApplicationClass::kNetwork);
}

TEST(WeightedKnn, ClassifiesBlobs) {
  const Dataset d = three_blobs(30, 0.5, 2);
  WeightedKnnClassifier wk(3);
  wk.train(d.points, d.labels);
  EXPECT_EQ(wk.classify(std::vector<double>{0.0, 0.0}),
            ApplicationClass::kCpu);
  EXPECT_EQ(wk.classify(std::vector<double>{10.0, 0.0}),
            ApplicationClass::kIo);
}

TEST(WeightedKnn, InverseDistanceBreaksMajority) {
  // Two far io points vs one coincident cpu point within k=3: plain
  // majority says io; inverse-distance weighting says cpu.
  linalg::Matrix points{{0.0, 0.0}, {5.0, 0.0}, {5.0, 0.1}};
  std::vector<ApplicationClass> labels = {ApplicationClass::kCpu,
                                          ApplicationClass::kIo,
                                          ApplicationClass::kIo};
  WeightedKnnClassifier wk(3);
  wk.train(points, labels);
  EXPECT_EQ(wk.classify(std::vector<double>{0.01, 0.0}),
            ApplicationClass::kCpu);
  MajorityKnnAdapter mk(KnnOptions{.k = 3});
  mk.train(points, labels);
  EXPECT_EQ(mk.classify(std::vector<double>{0.01, 0.0}),
            ApplicationClass::kIo);
}

TEST(Classifiers, AllAgreeOnWellSeparatedData) {
  const Dataset train = three_blobs(40, 0.6, 3);
  const Dataset test = three_blobs(20, 0.6, 4);

  std::vector<std::unique_ptr<SnapshotClassifier>> classifiers;
  classifiers.push_back(std::make_unique<NearestCentroidClassifier>());
  classifiers.push_back(std::make_unique<WeightedKnnClassifier>(3));
  classifiers.push_back(std::make_unique<MajorityKnnAdapter>());

  for (auto& clf : classifiers) {
    clf->train(train.points, train.labels);
    std::size_t correct = 0;
    const auto predictions = clf->classify_all(test.points);
    for (std::size_t i = 0; i < predictions.size(); ++i)
      correct += predictions[i] == test.labels[i];
    EXPECT_GT(static_cast<double>(correct) /
                  static_cast<double>(test.labels.size()),
              0.97)
        << clf->name();
  }
}

TEST(Classifiers, BatchMatchesPointwise) {
  const Dataset d = three_blobs(15, 0.5, 5);
  WeightedKnnClassifier wk(3);
  wk.train(d.points, d.labels);
  const auto batch = wk.classify_all(d.points);
  for (std::size_t i = 0; i < d.labels.size(); ++i)
    EXPECT_EQ(batch[i], wk.classify(d.points.row(i)));
}

TEST(Classifiers, NamesAreDistinct) {
  NearestCentroidClassifier a;
  WeightedKnnClassifier b;
  MajorityKnnAdapter c;
  EXPECT_NE(a.name(), b.name());
  EXPECT_NE(b.name(), c.name());
}

}  // namespace
}  // namespace appclass::core
