// Trace-context propagation: span trees across pool workers, bit-identical
// classification with tracing on/off, and histogram exemplars.
#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <latch>
#include <map>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "core_test_util.hpp"
#include "engine/thread_pool.hpp"
#include "obs/export.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/recorder.hpp"

namespace appclass {
namespace {

/// RAII tracing toggle so a failing assertion cannot leave tracing on for
/// the rest of the binary.
struct ScopedTracing {
  ScopedTracing() { obs::set_tracing_enabled(true); }
  ~ScopedTracing() { obs::set_tracing_enabled(false); }
};

const obs::TraceEvent* find_span(const std::vector<obs::TraceEvent>& events,
                                 const std::string& name) {
  for (const auto& e : events)
    if (e.phase == obs::TraceEvent::Phase::kSpan && e.name == name)
      return &e;
  return nullptr;
}

TEST(ObsTrace, SpanTreeAcrossWorkers) {
  // Parallelism 8 over a 600-snapshot pool (grain 256) forces the sharded
  // stages onto pool workers; the span tree must still parent correctly.
  core::PipelineOptions options;
  options.parallelism = 8;
  core::ClassificationPipeline pipeline(options);
  pipeline.train(core::testing::synthetic_training());
  const metrics::DataPool pool =
      core::testing::synthetic_pool(core::ApplicationClass::kIo, 600, 42);

  obs::TraceRecorder::global().clear();
  {
    ScopedTracing tracing;
    (void)pipeline.classify(pool);
  }

  const auto events = obs::TraceRecorder::global().events();
  const obs::TraceEvent* root = find_span(events, "classify");
  ASSERT_NE(root, nullptr);
  EXPECT_NE(root->context.trace_id, 0u);
  EXPECT_EQ(root->context.parent_span_id, 0u);

  // Every pipeline stage is a direct child of the classify root.
  std::map<std::string, const obs::TraceEvent*> stages;
  for (const char* name : {"preprocess", "pca_project", "knn_query", "vote"}) {
    const obs::TraceEvent* stage = find_span(events, name);
    ASSERT_NE(stage, nullptr) << name;
    EXPECT_EQ(stage->context.trace_id, root->context.trace_id) << name;
    EXPECT_EQ(stage->context.parent_span_id, root->context.span_id) << name;
    stages[name] = stage;
  }

  // Engine shards parent to the sharded stages (pca_project / knn_query),
  // whichever worker — or stolen deque — they actually ran on.
  std::size_t shards = 0;
  for (const auto& e : events) {
    if (e.phase != obs::TraceEvent::Phase::kSpan || e.name != "engine_shard")
      continue;
    EXPECT_EQ(e.context.trace_id, root->context.trace_id);
    EXPECT_TRUE(e.context.parent_span_id ==
                    stages["pca_project"]->context.span_id ||
                e.context.parent_span_id ==
                    stages["knn_query"]->context.span_id);
    ++shards;
  }
  // 600 rows at grain 256 = 3 shards per sharded stage.
  EXPECT_GE(shards, 4u);

  // Structured attributes survive into the recorded events.
  bool saw_vote_margin = false;
  for (const auto& a : stages["vote"]->attrs)
    if (a.key == "vote_margin") saw_vote_margin = true;
  EXPECT_TRUE(saw_vote_margin);
  bool saw_k = false;
  for (const auto& a : stages["knn_query"]->attrs)
    if (a.key == "k") saw_k = true;
  EXPECT_TRUE(saw_k);
}

TEST(ObsTrace, CrossThreadParentingIsDeterministic) {
  engine::ThreadPool pool(2);
  obs::TraceRecorder::global().clear();
  std::uint64_t root_span_id = 0;
  std::uint64_t root_trace_id = 0;
  {
    ScopedTracing tracing;
    obs::TraceSpan root("test_root");
    root_span_id = root.context().span_id;
    root_trace_id = root.context().trace_id;
    // Both tasks block on the latch until both have started, so they are
    // guaranteed to run on two distinct threads.
    std::latch both_started(2);
    pool.parallel_for(2, [&](std::size_t) {
      both_started.arrive_and_wait();
      obs::TraceSpan task_span("pool_task");
    });
  }

  std::vector<const obs::TraceEvent*> tasks;
  for (const auto& e : obs::TraceRecorder::global().events())
    if (e.name == "pool_task") tasks.push_back(&e);
  ASSERT_EQ(tasks.size(), 2u);
  EXPECT_NE(tasks[0]->tid, tasks[1]->tid);
  for (const auto* t : tasks) {
    EXPECT_EQ(t->context.trace_id, root_trace_id);
    EXPECT_EQ(t->context.parent_span_id, root_span_id);
  }
}

TEST(ObsTrace, AmbientContextRestoredAfterSpan) {
  ScopedTracing tracing;
  EXPECT_FALSE(obs::current_trace_context().active());
  {
    obs::TraceSpan outer("outer");
    EXPECT_EQ(obs::current_trace_context().span_id,
              outer.context().span_id);
    {
      obs::TraceSpan inner("inner");
      EXPECT_EQ(inner.context().parent_span_id, outer.context().span_id);
      EXPECT_EQ(inner.context().trace_id, outer.context().trace_id);
    }
    EXPECT_EQ(obs::current_trace_context().span_id,
              outer.context().span_id);
  }
  EXPECT_FALSE(obs::current_trace_context().active());
}

TEST(ObsTrace, DisabledTracingRecordsNothing) {
  obs::set_tracing_enabled(false);
  obs::TraceRecorder::global().clear();
  {
    obs::TraceSpan span("invisible");
    EXPECT_FALSE(span.recording());
    span.add_attr({"k", "v"});
  }
  EXPECT_EQ(obs::TraceRecorder::global().size(), 0u);
  EXPECT_FALSE(obs::current_trace_context().active());
}

TEST(ObsTrace, ClassificationBitIdenticalWithTracingOnAndOff) {
  core::PipelineOptions options;
  options.parallelism = 4;
  core::ClassificationPipeline pipeline(options);
  pipeline.train(core::testing::synthetic_training());
  const metrics::DataPool pool =
      core::testing::synthetic_pool(core::ApplicationClass::kCpu, 300, 9);

  obs::set_tracing_enabled(false);
  const core::ClassificationResult off = pipeline.classify(pool);
  core::ClassificationResult on;
  {
    ScopedTracing tracing;
    on = pipeline.classify(pool);
  }

  EXPECT_EQ(on.application_class, off.application_class);
  ASSERT_EQ(on.class_vector.size(), off.class_vector.size());
  for (std::size_t i = 0; i < on.class_vector.size(); ++i)
    EXPECT_EQ(on.class_vector[i], off.class_vector[i]) << i;
  ASSERT_EQ(on.confidences.size(), off.confidences.size());
  for (std::size_t i = 0; i < on.confidences.size(); ++i)
    EXPECT_EQ(on.confidences[i], off.confidences[i]) << i;
  ASSERT_EQ(on.projected.rows(), off.projected.rows());
  for (std::size_t r = 0; r < on.projected.rows(); ++r)
    for (std::size_t c = 0; c < on.projected.cols(); ++c)
      EXPECT_EQ(on.projected.at(r, c), off.projected.at(r, c));
}

TEST(ObsTrace, StageHistogramGainsExemplarReferencingTrace) {
  core::ClassificationPipeline pipeline;
  pipeline.train(core::testing::synthetic_training());
  const metrics::DataPool pool =
      core::testing::synthetic_pool(core::ApplicationClass::kIo, 64, 3);

  obs::TraceRecorder::global().clear();
  {
    ScopedTracing tracing;
    (void)pipeline.classify(pool);
  }

  const auto snapshot = obs::MetricsRegistry::global().snapshot();
  const auto* hist = snapshot.find_histogram("appclass_stage_seconds",
                                             {{"stage", "knn_query"}});
  ASSERT_NE(hist, nullptr);
  EXPECT_NE(hist->exemplar_trace_id, 0u);
  EXPECT_GE(hist->exemplar_value, 0.0);

  // The exemplar's trace id matches the recorded classify trace.
  const auto events = obs::TraceRecorder::global().events();
  const obs::TraceEvent* root = find_span(events, "classify");
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(hist->exemplar_trace_id, root->context.trace_id);

  // JSON export carries the exemplar; Prometheus text stays plain 0.0.4.
  const std::string json = obs::to_json(snapshot);
  EXPECT_NE(json.find("\"exemplar\""), std::string::npos);
  const std::string prom = obs::to_prometheus(snapshot);
  EXPECT_EQ(prom.find("exemplar"), std::string::npos);
}

TEST(ObsTrace, LogRecordsBecomeInstantEventsUnderActiveTrace) {
  obs::Logger::global().set_level(obs::LogLevel::kInfo);
  obs::Logger::global().set_sink([](const std::string&) {});
  obs::TraceRecorder::global().clear();
  std::uint64_t trace_id = 0;
  {
    ScopedTracing tracing;
    obs::TraceSpan span("logging_scope");
    trace_id = span.context().trace_id;
    APPCLASS_LOG_INFO("test.event", {"answer", 42});
  }
  obs::Logger::global().reset_sink();
  obs::Logger::global().set_level(obs::LogLevel::kOff);

  const auto events = obs::TraceRecorder::global().events();
  const obs::TraceEvent* instant = nullptr;
  for (const auto& e : events)
    if (e.phase == obs::TraceEvent::Phase::kInstant &&
        e.name == "test.event")
      instant = &e;
  ASSERT_NE(instant, nullptr);
  EXPECT_EQ(instant->context.trace_id, trace_id);
  ASSERT_FALSE(instant->attrs.empty());
  EXPECT_EQ(instant->attrs[0].key, "log");
  EXPECT_NE(instant->attrs[0].value.find("answer=42"), std::string::npos);
}

}  // namespace
}  // namespace appclass
