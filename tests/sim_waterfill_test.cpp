#include "sim/waterfill.hpp"

#include <gtest/gtest.h>

#include "linalg/random.hpp"

namespace appclass::sim {
namespace {

Demand make_demand(std::initializer_list<std::pair<ResourceId, double>> init) {
  Demand d;
  for (const auto& [rid, amount] : init) d.add(rid, amount);
  return d;
}

TEST(Waterfill, UncontendedRunsFullSpeed) {
  const std::vector<double> caps = {10.0};
  const std::vector<Demand> demands = {make_demand({{0, 3.0}}),
                                       make_demand({{0, 4.0}})};
  const auto f = waterfill(caps, demands);
  EXPECT_DOUBLE_EQ(f[0], 1.0);
  EXPECT_DOUBLE_EQ(f[1], 1.0);
}

TEST(Waterfill, SymmetricOverloadSplitsEqually) {
  const std::vector<double> caps = {1.0};
  const std::vector<Demand> demands = {make_demand({{0, 1.0}}),
                                       make_demand({{0, 1.0}}),
                                       make_demand({{0, 1.0}})};
  const auto f = waterfill(caps, demands);
  for (double fi : f) EXPECT_NEAR(fi, 1.0 / 3.0, 1e-12);
}

TEST(Waterfill, SmallDemandServedInFull) {
  // Linux-scheduler behaviour: the 0.2-core consumer is below its fair
  // share and gets everything; the two spinners split the rest.
  const std::vector<double> caps = {1.0};
  const std::vector<Demand> demands = {make_demand({{0, 0.2}}),
                                       make_demand({{0, 1.0}}),
                                       make_demand({{0, 1.0}})};
  const auto f = waterfill(caps, demands);
  EXPECT_DOUBLE_EQ(f[0], 1.0);
  EXPECT_NEAR(f[1], 0.4, 1e-12);
  EXPECT_NEAR(f[2], 0.4, 1e-12);
}

TEST(Waterfill, EmptyDemandGetsOne) {
  const std::vector<double> caps = {1.0};
  const std::vector<Demand> demands = {Demand{}, make_demand({{0, 5.0}})};
  const auto f = waterfill(caps, demands);
  EXPECT_DOUBLE_EQ(f[0], 1.0);
  EXPECT_NEAR(f[1], 0.2, 1e-12);
}

TEST(Waterfill, InfiniteCapacityNeverBinds) {
  const std::vector<double> caps = {kUncapped, 2.0};
  const std::vector<Demand> demands = {make_demand({{0, 1e9}, {1, 4.0}})};
  const auto f = waterfill(caps, demands);
  EXPECT_NEAR(f[0], 0.5, 1e-12);
}

TEST(Waterfill, ScaleSetByTightestResource) {
  // Instance uses CPU (plentiful) and disk (scarce): disk decides.
  const std::vector<double> caps = {10.0, 1.0};
  const std::vector<Demand> demands = {make_demand({{0, 1.0}, {1, 4.0}})};
  const auto f = waterfill(caps, demands);
  EXPECT_NEAR(f[0], 0.25, 1e-12);
}

TEST(Waterfill, CoupledVectorReleasesOtherResources) {
  // A disk-bound job scaled to 0.5 consumes only half its CPU, so a
  // co-located CPU job is unaffected.
  const std::vector<double> caps = {1.0, 10.0};
  const std::vector<Demand> demands = {
      make_demand({{0, 0.4}, {1, 20.0}}),  // disk-bound (f = 0.5)
      make_demand({{0, 0.8}})};            // cpu job
  const auto f = waterfill(caps, demands);
  EXPECT_NEAR(f[0], 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(f[1], 1.0);
  const auto loads = resource_loads(caps.size(), demands, f);
  EXPECT_NEAR(loads[0], 0.4 * 0.5 + 0.8, 1e-12);  // CPU under capacity
}

TEST(Waterfill, ZeroCapacityStopsUsers) {
  const std::vector<double> caps = {0.0};
  const std::vector<Demand> demands = {make_demand({{0, 1.0}})};
  const auto f = waterfill(caps, demands);
  EXPECT_DOUBLE_EQ(f[0], 0.0);
}

TEST(Waterfill, ResourceLoadsMatchHandComputation) {
  const std::vector<double> caps = {2.0, 3.0};
  const std::vector<Demand> demands = {make_demand({{0, 1.0}, {1, 1.0}}),
                                       make_demand({{1, 2.0}})};
  const std::vector<double> scales = {0.5, 1.0};
  const auto loads = resource_loads(caps.size(), demands, scales);
  EXPECT_DOUBLE_EQ(loads[0], 0.5);
  EXPECT_DOUBLE_EQ(loads[1], 2.5);
}

TEST(Waterfill, DuplicateAddAccumulates) {
  Demand d;
  d.add(3, 1.0);
  d.add(3, 2.0);
  EXPECT_EQ(d.size(), 1u);
  EXPECT_DOUBLE_EQ(d.amount(3), 3.0);
}

TEST(Waterfill, ZeroAmountIgnored) {
  Demand d;
  d.add(0, 0.0);
  EXPECT_TRUE(d.empty());
}

/// Property: random demand sets always produce a feasible allocation with
/// f in [0,1], and every scale is either 1 or justified by a resource at
/// (or over, never beyond tolerance) its capacity.
class WaterfillProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WaterfillProperty, FeasibleAndBounded) {
  linalg::Rng rng(GetParam());
  const std::size_t resources = 2 + rng.uniform_index(4);
  const std::size_t instances = 1 + rng.uniform_index(10);
  std::vector<double> caps(resources);
  for (auto& c : caps) c = rng.uniform(0.5, 20.0);
  std::vector<Demand> demands(instances);
  for (auto& d : demands) {
    const std::size_t touches = 1 + rng.uniform_index(resources);
    for (std::size_t k = 0; k < touches; ++k)
      d.add(rng.uniform_index(resources), rng.uniform(0.1, 10.0));
  }
  const auto f = waterfill(caps, demands);
  ASSERT_EQ(f.size(), instances);
  for (double fi : f) {
    EXPECT_GE(fi, 0.0);
    EXPECT_LE(fi, 1.0);
  }
  const auto loads = resource_loads(resources, demands, f);
  for (std::size_t r = 0; r < resources; ++r)
    EXPECT_LE(loads[r], caps[r] * (1.0 + 1e-9));
}

TEST_P(WaterfillProperty, ThrottledInstancesTouchASaturatedResource) {
  linalg::Rng rng(GetParam() + 1000);
  const std::size_t resources = 2 + rng.uniform_index(3);
  const std::size_t instances = 2 + rng.uniform_index(6);
  std::vector<double> caps(resources);
  for (auto& c : caps) c = rng.uniform(0.5, 5.0);
  std::vector<Demand> demands(instances);
  for (auto& d : demands)
    d.add(rng.uniform_index(resources), rng.uniform(0.5, 5.0));
  const auto f = waterfill(caps, demands);
  const auto loads = resource_loads(resources, demands, f);
  for (std::size_t i = 0; i < instances; ++i) {
    if (f[i] >= 1.0 - 1e-12) continue;
    bool touches_saturated = false;
    for (const auto& [rid, amount] : demands[i])
      if (amount > 0.0 && loads[rid] >= caps[rid] * (1.0 - 1e-6))
        touches_saturated = true;
    EXPECT_TRUE(touches_saturated) << "instance " << i << " throttled to "
                                   << f[i] << " with no bottleneck";
  }
}

INSTANTIATE_TEST_SUITE_P(RandomCases, WaterfillProperty,
                         ::testing::Range<std::uint64_t>(0, 25));

}  // namespace
}  // namespace appclass::sim
