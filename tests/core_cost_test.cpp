#include "core/cost_model.hpp"

#include <gtest/gtest.h>

namespace appclass::core {
namespace {

ClassComposition composition_of(std::initializer_list<ApplicationClass> v) {
  const std::vector<ApplicationClass> classes(v);
  return ClassComposition(classes);
}

TEST(CostModel, UnitCostIsWeightedAverage) {
  // UnitApplicationCost = a*cpu% + b*mem% + g*io% + d*net% + e*idle%.
  UnitCosts costs;
  costs.cpu = 4.0;
  costs.io = 2.0;
  costs.idle = 0.0;
  const CostModel model(costs);
  const auto comp = composition_of({ApplicationClass::kCpu,
                                    ApplicationClass::kCpu,
                                    ApplicationClass::kIo,
                                    ApplicationClass::kIdle});
  EXPECT_DOUBLE_EQ(model.unit_cost(comp), 4.0 * 0.5 + 2.0 * 0.25);
}

TEST(CostModel, PureClassCostsEqualUnitPrice) {
  UnitCosts costs;
  costs.cpu = 3.0;
  costs.memory = 5.0;
  costs.io = 7.0;
  costs.network = 11.0;
  costs.idle = 0.5;
  const CostModel model(costs);
  EXPECT_DOUBLE_EQ(model.unit_cost(composition_of({ApplicationClass::kCpu})),
                   3.0);
  EXPECT_DOUBLE_EQ(
      model.unit_cost(composition_of({ApplicationClass::kMemory})), 5.0);
  EXPECT_DOUBLE_EQ(model.unit_cost(composition_of({ApplicationClass::kIo})),
                   7.0);
  EXPECT_DOUBLE_EQ(
      model.unit_cost(composition_of({ApplicationClass::kNetwork})), 11.0);
  EXPECT_DOUBLE_EQ(model.unit_cost(composition_of({ApplicationClass::kIdle})),
                   0.5);
}

TEST(CostModel, IdleTimeCanBeFree) {
  const CostModel model(UnitCosts{});  // default idle price is 0
  EXPECT_DOUBLE_EQ(model.unit_cost(composition_of({ApplicationClass::kIdle})),
                   0.0);
}

TEST(CostModel, RunCostScalesWithElapsedTime) {
  const CostModel model(UnitCosts{.cpu = 2.0});
  RunRecord run;
  run.application = "ch3d";
  run.composition = composition_of({ApplicationClass::kCpu});
  run.application_class = ApplicationClass::kCpu;
  run.elapsed_seconds = 488;
  EXPECT_DOUBLE_EQ(model.run_cost(run), 2.0 * 488.0);
}

TEST(CostModel, ExpectedCostUsesProfileMeans) {
  ApplicationDatabase db;
  for (std::int64_t t : {100, 300}) {
    RunRecord run;
    run.application = "a";
    run.config = "c";
    run.composition = composition_of({ApplicationClass::kNetwork});
    run.application_class = ApplicationClass::kNetwork;
    run.elapsed_seconds = t;
    run.samples = 10;
    db.record(run);
  }
  const auto profile = db.profile("a", "c");
  ASSERT_TRUE(profile.has_value());
  const CostModel model(UnitCosts{.network = 3.0});
  EXPECT_DOUBLE_EQ(model.expected_cost(*profile), 3.0 * 200.0);
}

TEST(CostModel, ProviderPricingDifferentiatesApps) {
  // An I/O-heavy provider charges more for disk time; the same two runs
  // price differently under different schemes.
  const auto io_comp = composition_of({ApplicationClass::kIo});
  const auto cpu_comp = composition_of({ApplicationClass::kCpu});
  const CostModel disk_pricey(UnitCosts{.cpu = 1.0, .io = 10.0});
  const CostModel cpu_pricey(UnitCosts{.cpu = 10.0, .io = 1.0});
  EXPECT_GT(disk_pricey.unit_cost(io_comp), disk_pricey.unit_cost(cpu_comp));
  EXPECT_LT(cpu_pricey.unit_cost(io_comp), cpu_pricey.unit_cost(cpu_comp));
}

}  // namespace
}  // namespace appclass::core
