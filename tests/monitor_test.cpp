#include <gtest/gtest.h>

#include "monitor/bus.hpp"
#include "monitor/harness.hpp"
#include "monitor/profiler.hpp"
#include "sim/testbed.hpp"
#include "workloads/catalog.hpp"

namespace appclass::monitor {
namespace {

metrics::Snapshot snapshot_at(metrics::SimTime t, const std::string& ip) {
  metrics::Snapshot s;
  s.time = t;
  s.node_ip = ip;
  s.set(metrics::MetricId::kCpuUser, static_cast<double>(t));
  return s;
}

TEST(MetricBus, DeliversToAllSubscribers) {
  MetricBus bus;
  int a = 0, b = 0;
  bus.subscribe([&](const metrics::Snapshot&) { ++a; });
  bus.subscribe([&](const metrics::Snapshot&) { ++b; });
  bus.announce(snapshot_at(0, "n"));
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 1);
  EXPECT_EQ(bus.listener_count(), 2u);
}

TEST(MetricBus, UnsubscribeStopsDelivery) {
  MetricBus bus;
  int a = 0;
  const auto id = bus.subscribe([&](const metrics::Snapshot&) { ++a; });
  bus.announce(snapshot_at(0, "n"));
  bus.unsubscribe(id);
  bus.announce(snapshot_at(1, "n"));
  EXPECT_EQ(a, 1);
  EXPECT_EQ(bus.listener_count(), 0u);
}

TEST(MetricBus, UnsubscribeUnknownIdIsNoop) {
  MetricBus bus;
  bus.unsubscribe(12345);  // must not crash
  EXPECT_EQ(bus.listener_count(), 0u);
}

TEST(MetricBus, ReentrantUnsubscribeFromListenerIsSafe) {
  MetricBus bus;
  SubscriptionId self = 0;
  int calls = 0;
  self = bus.subscribe([&](const metrics::Snapshot&) {
    ++calls;
    bus.unsubscribe(self);
  });
  bus.announce(snapshot_at(0, "n"));
  bus.announce(snapshot_at(1, "n"));
  EXPECT_EQ(calls, 1);
}

TEST(Gmond, AnnouncesAtConfiguredInterval) {
  MetricBus bus;
  int received = 0;
  bus.subscribe([&](const metrics::Snapshot&) { ++received; });
  Gmond gmond("n", bus, /*announce_interval_s=*/3);
  for (int t = 0; t < 9; ++t) gmond.observe(snapshot_at(t, "n"));
  EXPECT_EQ(received, 3);
}

TEST(Profiler, SamplesEveryDSeconds) {
  MetricBus bus;
  PerformanceProfiler profiler(bus, /*sampling_interval_s=*/5);
  profiler.start();
  for (int t = 0; t < 20; ++t) bus.announce(snapshot_at(t, "n"));
  profiler.stop();
  ASSERT_EQ(profiler.raw_samples().size(), 4u);  // t = 0, 5, 10, 15
  EXPECT_EQ(profiler.raw_samples()[1].time, 5);
}

TEST(Profiler, CapturesAllNodesOnTheSubnet) {
  // Ganglia's listen/announce protocol means the profiler hears everyone.
  MetricBus bus;
  PerformanceProfiler profiler(bus, 1);
  profiler.start();
  bus.announce(snapshot_at(0, "a"));
  bus.announce(snapshot_at(0, "b"));
  profiler.stop();
  EXPECT_EQ(profiler.raw_samples().size(), 2u);
}

TEST(Profiler, StartIsIdempotent) {
  MetricBus bus;
  PerformanceProfiler profiler(bus, 1);
  profiler.start();
  profiler.start();
  bus.announce(snapshot_at(0, "n"));
  profiler.stop();
  EXPECT_EQ(profiler.raw_samples().size(), 1u);  // not double-subscribed
}

TEST(Profiler, StopDetachesFromBus) {
  MetricBus bus;
  PerformanceProfiler profiler(bus, 1);
  profiler.start();
  profiler.stop();
  bus.announce(snapshot_at(0, "n"));
  EXPECT_TRUE(profiler.raw_samples().empty());
  EXPECT_EQ(bus.listener_count(), 0u);
}

TEST(Profiler, ClearResetsCapture) {
  MetricBus bus;
  PerformanceProfiler profiler(bus, 1);
  profiler.start();
  bus.announce(snapshot_at(0, "n"));
  profiler.clear();
  EXPECT_TRUE(profiler.raw_samples().empty());
}

TEST(Filter, ExtractsOnlyTargetNode) {
  std::vector<metrics::Snapshot> raw = {
      snapshot_at(0, "a"), snapshot_at(0, "b"), snapshot_at(5, "a")};
  const metrics::DataPool pool = PerformanceFilter::extract(raw, "a");
  ASSERT_EQ(pool.size(), 2u);
  EXPECT_EQ(pool.node_ip(), "a");
  EXPECT_EQ(pool[1].time, 5);
}

TEST(Filter, NodesListsDistinctIps) {
  std::vector<metrics::Snapshot> raw = {
      snapshot_at(0, "a"), snapshot_at(0, "b"), snapshot_at(1, "a")};
  const auto nodes = PerformanceFilter::nodes(raw);
  EXPECT_EQ(nodes, (std::vector<std::string>{"a", "b"}));
}

TEST(Harness, ClusterMonitorRoutesEngineSnapshots) {
  sim::TestbedOptions opts;
  opts.four_vms = false;
  sim::Testbed tb = sim::make_testbed(opts);
  ClusterMonitor mon(*tb.engine);
  std::vector<std::string> seen;
  mon.bus().subscribe(
      [&](const metrics::Snapshot& s) { seen.push_back(s.node_ip); });
  tb.engine->run_for(2);
  // Two VMs (vm1 + peer vm4) x two ticks.
  EXPECT_EQ(seen.size(), 4u);
}

TEST(Harness, ProfileInstanceCapturesWholeRun) {
  sim::TestbedOptions opts;
  opts.four_vms = false;
  sim::Testbed tb = sim::make_testbed(opts);
  ClusterMonitor mon(*tb.engine);
  const auto id = tb.engine->submit(tb.vm1, workloads::make_postmark());
  const ProfiledRun run = profile_instance(*tb.engine, mon, id, 5);
  EXPECT_TRUE(run.completed);
  EXPECT_EQ(run.pool.node_ip(), "10.0.0.1");
  EXPECT_GT(run.elapsed(), 100);
  // ~1 sample per 5 seconds of run time.
  EXPECT_NEAR(static_cast<double>(run.pool.size()),
              static_cast<double>(run.elapsed()) / 5.0, 3.0);
}

TEST(Harness, ProfileInstanceHonoursTickBudget) {
  sim::TestbedOptions opts;
  opts.four_vms = false;
  sim::Testbed tb = sim::make_testbed(opts);
  ClusterMonitor mon(*tb.engine);
  const auto id = tb.engine->submit(
      tb.vm1, workloads::make_specseis(workloads::SeisDataSize::kMedium));
  const ProfiledRun run =
      profile_instance(*tb.engine, mon, id, 5, /*max_ticks=*/50);
  EXPECT_FALSE(run.completed);
  EXPECT_LE(tb.engine->now(), 50);
}

}  // namespace
}  // namespace appclass::monitor
