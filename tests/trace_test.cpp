#include "trace/timeseries.hpp"

#include <gtest/gtest.h>

namespace appclass::trace {
namespace {

TimeSeries make_series(std::vector<double> values, std::int64_t interval = 1) {
  TimeSeries s;
  s.start_time = 100;
  s.interval = interval;
  s.values = std::move(values);
  return s;
}

TEST(TimeSeries, TimeAtUsesInterval) {
  const TimeSeries s = make_series({1, 2, 3}, 5);
  EXPECT_EQ(s.time_at(0), 100);
  EXPECT_EQ(s.time_at(2), 110);
}

TEST(Downsample, AveragesBlocks) {
  const TimeSeries s = make_series({1, 3, 5, 7});
  const TimeSeries d = downsample(s, 2);
  ASSERT_EQ(d.size(), 2u);
  EXPECT_DOUBLE_EQ(d.values[0], 2.0);
  EXPECT_DOUBLE_EQ(d.values[1], 6.0);
  EXPECT_EQ(d.interval, 2);
}

TEST(Downsample, PartialTailAveragedOverActualLength) {
  const TimeSeries s = make_series({2, 4, 9});
  const TimeSeries d = downsample(s, 2);
  ASSERT_EQ(d.size(), 2u);
  EXPECT_DOUBLE_EQ(d.values[1], 9.0);
}

TEST(Downsample, FactorOneIsIdentity) {
  const TimeSeries s = make_series({1, 2, 3});
  const TimeSeries d = downsample(s, 1);
  EXPECT_EQ(d.values, s.values);
  EXPECT_EQ(d.interval, s.interval);
}

TEST(MovingAverage, SmoothsInterior) {
  const TimeSeries s = make_series({0, 0, 9, 0, 0});
  const TimeSeries m = moving_average(s, 3);
  EXPECT_DOUBLE_EQ(m.values[2], 3.0);
  EXPECT_DOUBLE_EQ(m.values[1], 3.0);
}

TEST(MovingAverage, EdgesUseOneSidedWindow) {
  const TimeSeries s = make_series({6, 0, 0});
  const TimeSeries m = moving_average(s, 3);
  EXPECT_DOUBLE_EQ(m.values[0], 3.0);  // (6+0)/2
}

TEST(MovingAverage, WidthOneIsIdentity) {
  const TimeSeries s = make_series({1, 5, 2});
  EXPECT_EQ(moving_average(s, 1).values, s.values);
}

TEST(Windows, SummariesCoverSeries) {
  const TimeSeries s = make_series({1, 2, 3, 4, 5});
  const auto w = windowed_summaries(s, 2);
  ASSERT_EQ(w.size(), 3u);
  EXPECT_EQ(w[0].begin, 0u);
  EXPECT_EQ(w[2].end, 5u);
  EXPECT_DOUBLE_EQ(w[0].stats.mean(), 1.5);
  EXPECT_EQ(w[2].stats.count(), 1u);
}

TEST(ChangePoints, DetectsStepChange) {
  std::vector<double> v;
  for (int i = 0; i < 20; ++i) v.push_back(1.0 + 0.01 * (i % 2));
  for (int i = 0; i < 20; ++i) v.push_back(10.0 + 0.01 * (i % 2));
  const auto cp = change_points(make_series(std::move(v)), 5, 2.0);
  ASSERT_FALSE(cp.empty());
  EXPECT_EQ(cp.front(), 20u);
}

TEST(ChangePoints, QuietSeriesHasNone) {
  std::vector<double> v(40, 3.0);
  const auto cp = change_points(make_series(std::move(v)), 5, 2.0);
  EXPECT_TRUE(cp.empty());
}

TEST(Segments, SplitAtBoundaries) {
  const std::vector<std::size_t> b = {3, 7};
  const auto segs = segments_from_boundaries(10, b);
  ASSERT_EQ(segs.size(), 3u);
  using Seg = std::pair<std::size_t, std::size_t>;
  EXPECT_EQ(segs[0], (Seg{0, 3}));
  EXPECT_EQ(segs[1], (Seg{3, 7}));
  EXPECT_EQ(segs[2], (Seg{7, 10}));
}

TEST(Segments, NoBoundariesIsWholeRange) {
  const auto segs = segments_from_boundaries(5, {});
  ASSERT_EQ(segs.size(), 1u);
  EXPECT_EQ(segs[0].second, 5u);
}

TEST(Segments, BoundaryAtEndYieldsNoEmptySegment) {
  const std::vector<std::size_t> b = {5};
  const auto segs = segments_from_boundaries(5, b);
  ASSERT_EQ(segs.size(), 1u);
  using Seg = std::pair<std::size_t, std::size_t>;
  EXPECT_EQ(segs[0], (Seg{0, 5}));
}

}  // namespace
}  // namespace appclass::trace
