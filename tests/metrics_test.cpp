#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

#include "metrics/schema.hpp"
#include "metrics/snapshot.hpp"

namespace appclass::metrics {
namespace {

TEST(Schema, HasExactly33Metrics) {
  EXPECT_EQ(kMetricCount, 33u);
  EXPECT_EQ(schema().size(), 33u);
  EXPECT_EQ(kGangliaDefaultCount, 29u);
}

TEST(Schema, IdsMatchPositions) {
  const auto s = schema();
  for (std::size_t i = 0; i < kMetricCount; ++i)
    EXPECT_EQ(index_of(s[i].id), i);
}

TEST(Schema, NamesAreUniqueAndNonEmpty) {
  std::set<std::string_view> names;
  for (const auto& mi : schema()) {
    EXPECT_FALSE(mi.name.empty());
    EXPECT_TRUE(names.insert(mi.name).second) << mi.name;
  }
}

TEST(Schema, FindMetricRoundTrips) {
  for (const auto& mi : schema()) {
    const auto found = find_metric(mi.name);
    ASSERT_TRUE(found.has_value()) << mi.name;
    EXPECT_EQ(*found, mi.id);
  }
  EXPECT_FALSE(find_metric("no_such_metric").has_value());
}

TEST(Schema, VmstatAdditionsFollowGangliaDefaults) {
  EXPECT_EQ(index_of(MetricId::kIoBi), kGangliaDefaultCount);
  EXPECT_EQ(index_of(MetricId::kSwapOut), kMetricCount - 1);
}

TEST(Schema, ExpertMetricsMatchTable1) {
  // Table 1: CPU system/user, bytes in/out, IO bi/bo, swap in/out.
  EXPECT_EQ(kExpertMetricCount, 8u);
  EXPECT_EQ(kExpertMetrics[0], MetricId::kCpuSystem);
  EXPECT_EQ(kExpertMetrics[1], MetricId::kCpuUser);
  EXPECT_EQ(kExpertMetrics[7], MetricId::kSwapOut);
}

TEST(Snapshot, GetSetRoundTrip) {
  Snapshot s;
  s.set(MetricId::kBytesIn, 12345.0);
  EXPECT_DOUBLE_EQ(s.get(MetricId::kBytesIn), 12345.0);
  EXPECT_DOUBLE_EQ(s.get(MetricId::kBytesOut), 0.0);
}

Snapshot make_snapshot(SimTime t, const std::string& ip, double base) {
  Snapshot s;
  s.time = t;
  s.node_ip = ip;
  for (std::size_t i = 0; i < kMetricCount; ++i)
    s.values[i] = base + static_cast<double>(i);
  return s;
}

TEST(DataPool, AddAndAccess) {
  DataPool pool;
  pool.add(make_snapshot(0, "10.0.0.1", 0.0));
  pool.add(make_snapshot(5, "10.0.0.1", 1.0));
  EXPECT_EQ(pool.size(), 2u);
  EXPECT_EQ(pool.node_ip(), "10.0.0.1");
  EXPECT_EQ(pool.start_time(), 0);
  EXPECT_EQ(pool.end_time(), 5);
}

TEST(DataPool, OrientationsAreTransposes) {
  DataPool pool;
  pool.add(make_snapshot(0, "n", 0.0));
  pool.add(make_snapshot(5, "n", 100.0));
  const auto metric_major = pool.to_metric_major();       // n x m
  const auto obs_major = pool.to_observation_major();     // m x n
  EXPECT_EQ(metric_major.rows(), kMetricCount);
  EXPECT_EQ(metric_major.cols(), 2u);
  EXPECT_EQ(obs_major.rows(), 2u);
  EXPECT_LT(metric_major.max_abs_diff(obs_major.transposed()), 1e-15);
}

TEST(DataPool, SelectedMetricExtraction) {
  DataPool pool;
  pool.add(make_snapshot(0, "n", 10.0));
  const std::vector<MetricId> sel = {MetricId::kCpuUser, MetricId::kIoBi};
  const auto m = pool.to_observation_major(sel);
  EXPECT_EQ(m.rows(), 1u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 10.0 + index_of(MetricId::kCpuUser));
  EXPECT_DOUBLE_EQ(m.at(0, 1), 10.0 + index_of(MetricId::kIoBi));
}

TEST(DataPool, SeriesExtractsOneMetricOverTime) {
  DataPool pool;
  pool.add(make_snapshot(0, "n", 1.0));
  pool.add(make_snapshot(5, "n", 2.0));
  const auto s = pool.series(MetricId::kCpuUser);
  ASSERT_EQ(s.size(), 2u);
  EXPECT_DOUBLE_EQ(s[1] - s[0], 1.0);
}

TEST(DataPoolCsv, RoundTripsExactly) {
  DataPool pool;
  pool.add(make_snapshot(0, "10.0.0.1", 0.5));
  pool.add(make_snapshot(5, "10.0.0.1", 2.25));
  const std::string csv = to_csv(pool);
  const DataPool restored = from_csv(csv);
  ASSERT_EQ(restored.size(), 2u);
  EXPECT_EQ(restored[0].node_ip, "10.0.0.1");
  EXPECT_EQ(restored[1].time, 5);
  for (std::size_t i = 0; i < kMetricCount; ++i)
    EXPECT_DOUBLE_EQ(restored[1].values[i], pool[1].values[i]);
}

TEST(DataPoolCsv, HeaderListsAllMetricNames) {
  const DataPool pool;
  const std::string csv = to_csv(pool);
  for (const auto& mi : schema())
    EXPECT_NE(csv.find(std::string(mi.name)), std::string::npos) << mi.name;
}

TEST(DataPoolCsv, RejectsEmptyInput) {
  EXPECT_THROW(from_csv(""), std::runtime_error);
}

TEST(DataPoolCsv, RejectsWrongColumnCount) {
  EXPECT_THROW(from_csv("time,node_ip,cpu_user\n"), std::runtime_error);
}

TEST(DataPoolCsv, RejectsNonNumericCell) {
  DataPool pool;
  pool.add(make_snapshot(0, "n", 1.0));
  std::string csv = to_csv(pool);
  const auto pos = csv.rfind("1");
  csv.replace(pos, 1, "x");
  EXPECT_THROW(from_csv(csv), std::runtime_error);
}

}  // namespace
}  // namespace appclass::metrics
