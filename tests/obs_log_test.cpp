#include "obs/log.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace appclass::obs {
namespace {

/// Captures log lines in memory and restores the logger on teardown.
class LogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Logger::global().set_sink(
        [this](const std::string& line) { lines_.push_back(line); });
  }
  void TearDown() override {
    Logger::global().set_level(LogLevel::kOff);
    Logger::global().reset_sink();
  }
  std::vector<std::string> lines_;
};

TEST_F(LogTest, DisabledLevelEmitsNothing) {
  Logger::global().set_level(LogLevel::kWarn);
  APPCLASS_LOG_INFO("quiet.event", {"k", "v"});
  APPCLASS_LOG_DEBUG("quieter.event");
  EXPECT_TRUE(lines_.empty());
}

TEST_F(LogTest, EnabledLevelEmitsStructuredLine) {
  Logger::global().set_level(LogLevel::kInfo);
  APPCLASS_LOG_INFO("pipeline.train", {"snapshots", 200}, {"q", 2});
  ASSERT_EQ(lines_.size(), 1u);
  const std::string& line = lines_[0];
  EXPECT_NE(line.find("INFO pipeline.train"), std::string::npos);
  EXPECT_NE(line.find("snapshots=200"), std::string::npos);
  EXPECT_NE(line.find("q=2"), std::string::npos);
}

TEST_F(LogTest, LevelOrderingFiltersCorrectly) {
  Logger::global().set_level(LogLevel::kWarn);
  APPCLASS_LOG_TRACE("e");
  APPCLASS_LOG_DEBUG("e");
  APPCLASS_LOG_INFO("e");
  APPCLASS_LOG_WARN("warn.event");
  APPCLASS_LOG_ERROR("error.event");
  ASSERT_EQ(lines_.size(), 2u);
  EXPECT_NE(lines_[0].find("WARN warn.event"), std::string::npos);
  EXPECT_NE(lines_[1].find("ERROR error.event"), std::string::npos);
}

TEST_F(LogTest, FieldFormatting) {
  Logger::global().set_level(LogLevel::kTrace);
  APPCLASS_LOG_INFO("fmt", {"str", "plain"}, {"quoted", "has space"},
                    {"flag", true}, {"neg", -7}, {"pi", 3.25},
                    {"empty", ""});
  ASSERT_EQ(lines_.size(), 1u);
  const std::string& line = lines_[0];
  EXPECT_NE(line.find("str=plain"), std::string::npos);
  EXPECT_NE(line.find("quoted=\"has space\""), std::string::npos);
  EXPECT_NE(line.find("flag=true"), std::string::npos);
  EXPECT_NE(line.find("neg=-7"), std::string::npos);
  EXPECT_NE(line.find("pi=3.25"), std::string::npos);
  EXPECT_NE(line.find("empty=\"\""), std::string::npos);
}

TEST_F(LogTest, QuotesAndBackslashesAreEscaped) {
  Logger::global().set_level(LogLevel::kInfo);
  APPCLASS_LOG_INFO("esc", {"v", "say \"hi\""});
  ASSERT_EQ(lines_.size(), 1u);
  EXPECT_NE(lines_[0].find("v=\"say \\\"hi\\\"\""), std::string::npos);
}

TEST_F(LogTest, DisabledGuardSkipsArgumentEvaluation) {
  Logger::global().set_level(LogLevel::kError);
  int evaluations = 0;
  auto expensive = [&evaluations] {
    ++evaluations;
    return std::string("value");
  };
  APPCLASS_LOG_DEBUG("lazy", {"k", expensive()});
  EXPECT_EQ(evaluations, 0);
  APPCLASS_LOG_ERROR("eager", {"k", expensive()});
  EXPECT_EQ(evaluations, 1);
}

TEST(LogLevelParsing, NamesRoundTrip) {
  EXPECT_EQ(parse_log_level("trace"), LogLevel::kTrace);
  EXPECT_EQ(parse_log_level("DEBUG"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("Info"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("warn"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("warning"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("error"), LogLevel::kError);
  EXPECT_EQ(parse_log_level("off"), LogLevel::kOff);
  EXPECT_EQ(parse_log_level("bogus", LogLevel::kInfo), LogLevel::kInfo);
  EXPECT_EQ(to_string(LogLevel::kWarn), "WARN");
}

}  // namespace
}  // namespace appclass::obs
