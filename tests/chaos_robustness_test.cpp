// Acceptance tests for the chaos sweep: the trained classifier's
// majority-vote class must survive realistic monitoring degradation (10%
// announcement loss + 1% payload corruption) on every canonical workload
// when the snapshot sanitizer is enabled, with per-snapshot accuracy
// degraded by no more than a bounded margin.
#include "core/robustness.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/trainer.hpp"

namespace appclass::core {
namespace {

const ClassificationPipeline& pipeline() {
  static const ClassificationPipeline p = make_trained_pipeline();
  return p;
}

const std::vector<RecordedRun>& runs() {
  static const std::vector<RecordedRun> r = record_canonical_runs();
  return r;
}

TEST(ChaosRobustness, FaultKindNamesRoundTrip) {
  for (const FaultKind kind : all_fault_kinds()) {
    const auto back = fault_kind_from_string(to_string(kind));
    ASSERT_TRUE(back.has_value()) << to_string(kind);
    EXPECT_EQ(*back, kind);
  }
  EXPECT_FALSE(fault_kind_from_string("gremlins").has_value());
}

TEST(ChaosRobustness, RecordsAllFiveCanonicalWorkloads) {
  ASSERT_EQ(runs().size(), 5u);
  for (const auto& run : runs()) {
    EXPECT_FALSE(run.workload.empty());
    EXPECT_FALSE(run.node_ip.empty());
    EXPECT_GT(run.announcements.size(), 50u) << run.workload;
    for (double m : run.metric_means)
      EXPECT_TRUE(std::isfinite(m)) << run.workload;
  }
}

TEST(ChaosRobustness, ZeroFaultRateIsLossless) {
  ChaosOptions options;
  for (const auto& run : runs()) {
    const ChaosCell cell =
        run_chaos_cell(pipeline(), run, FaultKind::kDrop, 0.0, options);
    EXPECT_EQ(cell.survived_samples, cell.clean_samples) << run.workload;
    EXPECT_DOUBLE_EQ(cell.accuracy, 1.0) << run.workload;
    EXPECT_TRUE(cell.majority_ok) << run.workload;
    EXPECT_EQ(cell.rejected, 0u) << run.workload;
  }
}

TEST(ChaosRobustness, CellsAreDeterministic) {
  ChaosOptions options;
  const auto& run = runs().front();
  const ChaosCell a = run_chaos_cell(pipeline(), run,
                                     FaultKind::kDropAndCorrupt, 0.3, options);
  const ChaosCell b = run_chaos_cell(pipeline(), run,
                                     FaultKind::kDropAndCorrupt, 0.3, options);
  EXPECT_EQ(a.survived_samples, b.survived_samples);
  EXPECT_EQ(a.rejected, b.rejected);
  EXPECT_EQ(a.imputed_values, b.imputed_values);
  EXPECT_DOUBLE_EQ(a.accuracy, b.accuracy);
  EXPECT_EQ(a.majority, b.majority);
}

// The headline acceptance criterion: at 10% drop + 1% corruption with the
// sanitizer enabled, every canonical workload keeps its majority-vote
// class, and per-snapshot accuracy stays within a bounded margin.
TEST(ChaosRobustness, MajoritySurvivesTenPercentDropOnePercentCorruption) {
  ChaosOptions options;
  options.sanitize = true;
  for (const auto& run : runs()) {
    const ChaosCell cell = run_chaos_cell(
        pipeline(), run, FaultKind::kDropAndCorrupt, 0.1, options);
    EXPECT_TRUE(cell.majority_ok)
        << run.workload << ": majority flipped to "
        << to_string(cell.majority);
    EXPECT_GE(cell.accuracy, 0.8) << run.workload;
    EXPECT_GT(cell.survived_samples, cell.clean_samples / 2) << run.workload;
  }
}

TEST(ChaosRobustness, SanitizerRepairsHeavyCorruption) {
  // At 30% corruption the sanitizer must be visibly working (imputations
  // recorded) and must not do worse than feeding raw garbage downstream.
  ChaosOptions options;
  const auto& run = runs().front();
  options.sanitize = true;
  const ChaosCell clean = run_chaos_cell(pipeline(), run,
                                         FaultKind::kCorrupt, 0.3, options);
  options.sanitize = false;
  const ChaosCell raw = run_chaos_cell(pipeline(), run,
                                       FaultKind::kCorrupt, 0.3, options);
  EXPECT_GT(clean.imputed_values, 0u);
  EXPECT_GE(clean.accuracy, raw.accuracy);
}

TEST(ChaosRobustness, SweepCoversEveryCellAndRendersCsv) {
  ChaosOptions options;
  options.rates = {0.0, 0.1};
  options.kinds = {FaultKind::kDrop, FaultKind::kDuplicate};
  const auto cells = run_chaos_sweep(pipeline(), runs(), options);
  EXPECT_EQ(cells.size(), runs().size() * 2 * 2);
  const std::string csv = chaos_csv(cells);
  EXPECT_EQ(csv.rfind("workload,expected,fault_kind,rate,sanitized,", 0), 0u);
  std::size_t lines = 0;
  for (const char c : csv)
    if (c == '\n') ++lines;
  EXPECT_EQ(lines, cells.size() + 1);  // header + one row per cell
}

}  // namespace
}  // namespace appclass::core
