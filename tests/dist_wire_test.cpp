// Wire-format tests for the distributed serving frames: round trips
// (including trace-context propagation), streaming decode across
// arbitrary byte splits, and every corruption edge the decoder
// distinguishes — torn frame, flipped checksum, unknown schema version,
// zero-length / rejected payloads, bad magic.
#include "dist/wire.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "monitor/wire.hpp"

namespace appclass::dist {
namespace {

metrics::Snapshot sample_snapshot(metrics::SimTime t = 25,
                                  const std::string& ip = "10.0.2.1") {
  metrics::Snapshot s;
  s.time = t;
  s.node_ip = ip;
  s.set(metrics::MetricId::kCpuUser, 93.5);
  s.set(metrics::MetricId::kBytesIn, 1.25e6);
  s.set(metrics::MetricId::kSwapOut, 42.0);
  return s;
}

obs::TraceContext sample_trace() {
  obs::TraceContext trace;
  trace.trace_id = 0xDEADBEEFCAFEF00Dull;
  trace.span_id = 0x123456789ABCDEF0ull;
  return trace;
}

/// Same FNV-1a-64 as the encoder, for tests that re-seal a frame after
/// corrupting its payload on purpose.
std::uint64_t fnv1a64(const std::uint8_t* data, std::size_t size) {
  std::uint64_t h = 14695981039346656037ull;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= data[i];
    h *= 1099511628211ull;
  }
  return h;
}

void put_u64_be(std::uint8_t* out, std::uint64_t v) {
  for (int i = 7; i >= 0; --i) {
    out[i] = static_cast<std::uint8_t>(v & 0xFF);
    v >>= 8;
  }
}

TEST(DistWire, FrameRoundTripPreservesSnapshotSeqAndTrace) {
  const metrics::Snapshot snapshot = sample_snapshot();
  const obs::TraceContext trace = sample_trace();
  const auto bytes = encode_frame(snapshot, 77, trace);

  FrameDecoder decoder;
  decoder.append(bytes);
  Frame frame;
  ASSERT_EQ(decoder.next(frame), DecodeStatus::kOk);
  EXPECT_EQ(frame.seq, 77u);
  EXPECT_EQ(frame.trace.trace_id, trace.trace_id);
  EXPECT_EQ(frame.trace.span_id, trace.span_id);
  EXPECT_EQ(frame.snapshot.time, snapshot.time);
  EXPECT_EQ(frame.snapshot.node_ip, snapshot.node_ip);
  // The payload is monitor::encode_packet, so byte equality of the
  // re-encoded snapshots is full value equality.
  EXPECT_EQ(monitor::encode_packet(frame.snapshot),
            monitor::encode_packet(snapshot));
  EXPECT_EQ(decoder.buffered(), 0u);
  EXPECT_EQ(decoder.next(frame), DecodeStatus::kNeedMore);
}

TEST(DistWire, AnnounceTimestampRoundTripsThroughTheHeader) {
  // v2 stamps the announce wall-clock into the frame header: the worker
  // derives announce->ingested latency from it, the sender
  // announce->durable-ack. Omitting it keeps the legacy zero.
  const metrics::Snapshot snapshot = sample_snapshot();
  const auto stamped =
      encode_frame(snapshot, 7, sample_trace(), 1'722'000'000'123'456ull);
  FrameDecoder decoder;
  decoder.append(stamped);
  Frame frame;
  ASSERT_EQ(decoder.next(frame), DecodeStatus::kOk);
  EXPECT_EQ(frame.announce_us, 1'722'000'000'123'456ull);
  EXPECT_EQ(frame.seq, 7u);

  const auto unstamped = encode_frame(snapshot, 8, {});
  FrameDecoder decoder2;
  decoder2.append(unstamped);
  ASSERT_EQ(decoder2.next(frame), DecodeStatus::kOk);
  EXPECT_EQ(frame.announce_us, 0u);

  // wall_now_us is a plausible Unix-epoch stamp, not a steady clock:
  // any date past 2020 and before 2100 (in µs) passes.
  const std::uint64_t now = wall_now_us();
  EXPECT_GT(now, 1'577'836'800'000'000ull);
  EXPECT_LT(now, 4'102'444'800'000'000ull);
}

TEST(DistWire, DecoderReassemblesByteAtATime) {
  // Two back-to-back frames fed one byte at a time: the decoder must
  // yield each exactly once, at exactly the byte that completes it.
  const auto a = encode_frame(sample_snapshot(25, "10.0.0.1"), 1, {});
  const auto b = encode_frame(sample_snapshot(30, "10.0.1.1"), 2, {});
  std::vector<std::uint8_t> stream = a;
  stream.insert(stream.end(), b.begin(), b.end());

  FrameDecoder decoder;
  Frame frame;
  std::vector<std::uint64_t> seqs;
  for (const std::uint8_t byte : stream) {
    decoder.append({&byte, 1});
    for (;;) {
      const DecodeStatus status = decoder.next(frame);
      if (status == DecodeStatus::kNeedMore) break;
      ASSERT_EQ(status, DecodeStatus::kOk);
      seqs.push_back(frame.seq);
    }
  }
  EXPECT_EQ(seqs, (std::vector<std::uint64_t>{1, 2}));
}

TEST(DistWire, TornFrameMidLengthReportsNeedMore) {
  // Cut inside the length field (before the payload length is even
  // readable): a torn tail, not corruption.
  const auto bytes = encode_frame(sample_snapshot(), 5, {});
  FrameDecoder decoder;
  decoder.append({bytes.data(), kFrameHeaderBytes - 2});
  Frame frame;
  EXPECT_EQ(decoder.next(frame), DecodeStatus::kNeedMore);
  // Torn mid-payload is equally incomplete.
  FrameDecoder decoder2;
  decoder2.append({bytes.data(), bytes.size() - 9});
  EXPECT_EQ(decoder2.next(frame), DecodeStatus::kNeedMore);
}

TEST(DistWire, FlippedChecksumByteIsBadChecksum) {
  auto bytes = encode_frame(sample_snapshot(), 5, {});
  bytes.back() ^= 0x01;  // trailer byte
  FrameDecoder decoder;
  decoder.append(bytes);
  Frame frame;
  EXPECT_EQ(decoder.next(frame), DecodeStatus::kBadChecksum);
}

TEST(DistWire, FlippedPayloadByteIsBadChecksum) {
  auto bytes = encode_frame(sample_snapshot(), 5, {});
  bytes[kFrameHeaderBytes + 3] ^= 0x80;
  FrameDecoder decoder;
  decoder.append(bytes);
  Frame frame;
  EXPECT_EQ(decoder.next(frame), DecodeStatus::kBadChecksum);
}

TEST(DistWire, UnknownVersionRejectedBeforeChecksum) {
  auto bytes = encode_frame(sample_snapshot(), 5, {});
  bytes[4] = kWireVersion + 1;  // version byte sits right after the magic
  // Deliberately NOT re-sealing the checksum: kBadVersion must win, so a
  // peer speaking a future schema reads "bad version", never "corrupt".
  FrameDecoder decoder;
  decoder.append(bytes);
  Frame frame;
  EXPECT_EQ(decoder.next(frame), DecodeStatus::kBadVersion);
}

TEST(DistWire, ZeroLengthPayloadIsBadPayload) {
  auto bytes = encode_frame(sample_snapshot(), 5, {});
  // Zero the payload-length field (last 4 header bytes). Length sanity
  // precedes the checksum, so no re-seal needed.
  std::memset(bytes.data() + kFrameHeaderBytes - 4, 0, 4);
  FrameDecoder decoder;
  decoder.append(bytes);
  Frame frame;
  EXPECT_EQ(decoder.next(frame), DecodeStatus::kBadPayload);
}

TEST(DistWire, ValidChecksumOverGarbagePayloadIsBadPayload) {
  // A frame whose outer checksum is intact but whose payload is not a
  // monitor packet: the inner decode must reject it as kBadPayload —
  // the two validation layers are distinguishable.
  auto bytes = encode_frame(sample_snapshot(), 5, {});
  bytes[kFrameHeaderBytes] ^= 0xFF;  // corrupt payload...
  const std::uint64_t checksum =      // ...and re-seal the frame
      fnv1a64(bytes.data() + 4, bytes.size() - 4 - 8);
  put_u64_be(bytes.data() + bytes.size() - 8, checksum);
  FrameDecoder decoder;
  decoder.append(bytes);
  Frame frame;
  EXPECT_EQ(decoder.next(frame), DecodeStatus::kBadPayload);
}

TEST(DistWire, BadMagicIsUnrecoverable) {
  auto bytes = encode_frame(sample_snapshot(), 5, {});
  bytes[0] ^= 0xFF;
  FrameDecoder decoder;
  decoder.append(bytes);
  Frame frame;
  EXPECT_EQ(decoder.next(frame), DecodeStatus::kBadMagic);
}

TEST(DistWire, HelloRoundTripAndCorruptionEdges) {
  const auto bytes = encode_hello({.wal_next = 424242});
  ASSERT_EQ(bytes.size(), kHelloBytes);
  Hello hello;
  ASSERT_EQ(decode_hello(bytes, hello), DecodeStatus::kOk);
  EXPECT_EQ(hello.wal_next, 424242u);

  auto bad_version = bytes;
  bad_version[4] = kWireVersion + 3;
  EXPECT_EQ(decode_hello(bad_version, hello), DecodeStatus::kBadVersion);

  auto bad_checksum = bytes;
  bad_checksum.back() ^= 0x10;
  EXPECT_EQ(decode_hello(bad_checksum, hello), DecodeStatus::kBadChecksum);

  auto bad_magic = bytes;
  bad_magic[1] ^= 0xFF;
  EXPECT_EQ(decode_hello(bad_magic, hello), DecodeStatus::kBadMagic);
}

TEST(DistWire, AckRoundTrip) {
  const auto bytes = encode_ack(99);
  ASSERT_EQ(bytes.size(), kAckBytes);
  std::uint64_t seq = 0;
  ASSERT_EQ(decode_ack(bytes, seq), DecodeStatus::kOk);
  EXPECT_EQ(seq, 99u);

  auto bad = bytes;
  bad[0] ^= 0x01;
  EXPECT_EQ(decode_ack(bad, seq), DecodeStatus::kBadMagic);
}

TEST(DistWire, StatusNamesAreDistinct) {
  // The serve log prints these; version mismatch and corruption must
  // read differently.
  EXPECT_STRNE(to_string(DecodeStatus::kBadVersion),
               to_string(DecodeStatus::kBadChecksum));
  EXPECT_STRNE(to_string(DecodeStatus::kBadPayload),
               to_string(DecodeStatus::kBadChecksum));
}

}  // namespace
}  // namespace appclass::dist
