// Prometheus text exposition (0.0.4) conformance and JSON exemplar
// rendering, checked against a local registry so global state cannot
// interfere.
#include "obs/export.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "obs/metrics.hpp"

namespace appclass {
namespace {

TEST(ObsExport, LabelValuesAreEscaped) {
  obs::MetricsRegistry registry;
  // Raw label value: a\b"c<newline>d — every character class the
  // exposition format must escape.
  registry.counter("appclass_export_escape_total",
                   {{"path", "a\\b\"c\nd"}})
      .inc(3);
  const std::string prom = obs::to_prometheus(registry.snapshot());
  // Backslash doubles, quote gains a backslash, newline becomes \n.
  EXPECT_NE(prom.find("appclass_export_escape_total"
                      "{path=\"a\\\\b\\\"c\\nd\"} 3"),
            std::string::npos)
      << prom;
  // No raw newline may survive inside a label value: every line must
  // start with the metric name or a comment.
  std::size_t pos = 0;
  while ((pos = prom.find('\n', pos)) != std::string::npos) {
    ++pos;
    if (pos >= prom.size()) break;
    EXPECT_TRUE(prom[pos] == '#' || prom[pos] == 'a') << prom.substr(pos, 20);
  }
}

TEST(ObsExport, HistogramBucketsAreCumulativeAndInfMatchesCount) {
  obs::MetricsRegistry registry;
  obs::Histogram& h = registry.histogram("appclass_export_latency_seconds",
                                         {}, {1.0, 2.0});
  h.observe(0.5);
  h.observe(1.5);
  h.observe(5.0);
  const std::string prom = obs::to_prometheus(registry.snapshot());
  EXPECT_NE(prom.find("# TYPE appclass_export_latency_seconds histogram"),
            std::string::npos);
  EXPECT_NE(
      prom.find("appclass_export_latency_seconds_bucket{le=\"1\"} 1"),
      std::string::npos)
      << prom;
  EXPECT_NE(
      prom.find("appclass_export_latency_seconds_bucket{le=\"2\"} 2"),
      std::string::npos)
      << prom;
  // The +Inf cumulative bucket always equals _count.
  EXPECT_NE(
      prom.find("appclass_export_latency_seconds_bucket{le=\"+Inf\"} 3"),
      std::string::npos)
      << prom;
  EXPECT_NE(prom.find("appclass_export_latency_seconds_sum 7"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("appclass_export_latency_seconds_count 3"),
            std::string::npos)
      << prom;
}

TEST(ObsExport, TypeLineEmittedOncePerFamily) {
  obs::MetricsRegistry registry;
  registry.counter("appclass_export_multi_total", {{"path", "/a"}}).inc();
  registry.counter("appclass_export_multi_total", {{"path", "/b"}}).inc();
  const std::string prom = obs::to_prometheus(registry.snapshot());
  const std::string type_line = "# TYPE appclass_export_multi_total counter";
  const std::size_t first = prom.find(type_line);
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(prom.find(type_line, first + 1), std::string::npos);
}

TEST(ObsExport, RenderingIsStableAcrossSnapshots) {
  obs::MetricsRegistry registry;
  // Registered out of order; the snapshot sorts by (name, labels).
  registry.counter("appclass_export_zeta_total").inc(1);
  registry.gauge("appclass_export_alpha").set(2.0);
  registry.counter("appclass_export_beta_total", {{"w", "1"}}).inc(4);
  registry.counter("appclass_export_beta_total", {{"w", "0"}}).inc(3);
  registry.histogram("appclass_export_mid_seconds", {}, {1.0}).observe(0.5);

  const std::string first = obs::to_prometheus(registry.snapshot());
  const std::string second = obs::to_prometheus(registry.snapshot());
  EXPECT_EQ(first, second);

  // Label sets of one family render in sorted order.
  EXPECT_LT(first.find("appclass_export_beta_total{w=\"0\"}"),
            first.find("appclass_export_beta_total{w=\"1\"}"));
}

TEST(ObsExport, JsonCarriesExemplarPrometheusDoesNot) {
  obs::MetricsRegistry registry;
  obs::Histogram& h =
      registry.histogram("appclass_export_traced_seconds", {}, {1.0});
  h.observe(0.25);
  h.set_exemplar(0.25, 0xabcULL);
  const auto snapshot = registry.snapshot();

  const std::string json = obs::to_json(snapshot);
  EXPECT_NE(json.find("\"exemplar\":{\"trace_id\":\"abc\",\"value\":0.25}"),
            std::string::npos)
      << json;
  const std::string prom = obs::to_prometheus(snapshot);
  EXPECT_EQ(prom.find("exemplar"), std::string::npos);
  EXPECT_EQ(prom.find("abc"), std::string::npos);
}

TEST(ObsExport, NoExemplarFieldWhenNoneRecorded) {
  obs::MetricsRegistry registry;
  registry.histogram("appclass_export_plain_seconds", {}, {1.0}).observe(0.5);
  const std::string json = obs::to_json(registry.snapshot());
  EXPECT_EQ(json.find("exemplar"), std::string::npos);
}

}  // namespace
}  // namespace appclass
