#include <gtest/gtest.h>

#include "core/online.hpp"
#include "core/trainer.hpp"
#include "monitor/harness.hpp"
#include "sched/migration.hpp"
#include "sim/testbed.hpp"
#include "workloads/phased_app.hpp"

namespace appclass {
namespace {

using workloads::Phase;

std::unique_ptr<sim::WorkloadModel> burner(double cores, double seconds,
                                           double ws_mb = 40.0) {
  Phase p;
  p.name = "burn";
  p.work_units = seconds;
  p.nominal_rate = 1.0;
  p.cpu_per_unit = cores;
  p.rate_jitter = 0.0;
  p.mem.working_set_mb = ws_mb;
  return std::make_unique<workloads::PhasedApp>("burner",
                                                std::vector<Phase>{p});
}

sim::Testbed two_vm_testbed(std::uint64_t seed = 3) {
  sim::TestbedOptions opts;
  opts.seed = seed;
  opts.four_vms = true;
  return sim::make_testbed(opts);
}

TEST(Migration, MovesInstanceAndPausesIt) {
  sim::Testbed tb = two_vm_testbed();
  tb.engine->set_migration_bandwidth(20.0e6);
  const auto id = tb.engine->submit(tb.vm1, burner(1.0, 100.0, 40.0));
  tb.engine->run_for(10);
  const sim::SimTime downtime = tb.engine->migrate(id, tb.vm2);
  // 40 MB at 20 MB/s -> ~2-3 s downtime.
  EXPECT_GE(downtime, 2);
  EXPECT_LE(downtime, 3);
  EXPECT_EQ(tb.engine->instance(id).vm, tb.vm2);
  EXPECT_TRUE(tb.engine->run_until_done(1000));
  // Total elapsed ~ work + downtime.
  EXPECT_NEAR(static_cast<double>(tb.engine->instance(id).elapsed()),
              100.0 + static_cast<double>(downtime), 3.0);
}

TEST(Migration, NoopCases) {
  sim::Testbed tb = two_vm_testbed();
  const auto id = tb.engine->submit(tb.vm1, burner(1.0, 20.0));
  // Pending instance: no-op.
  EXPECT_EQ(tb.engine->migrate(id, tb.vm2), 0);
  tb.engine->step();
  // Same-VM migration: no-op.
  EXPECT_EQ(tb.engine->migrate(id, tb.vm1), 0);
  EXPECT_TRUE(tb.engine->run_until_done(100));
  // Finished instance: no-op.
  EXPECT_EQ(tb.engine->migrate(id, tb.vm2), 0);
}

TEST(Migration, DowntimeScalesWithWorkingSet) {
  sim::Testbed tb = two_vm_testbed();
  tb.engine->set_migration_bandwidth(20.0e6);
  const auto small = tb.engine->submit(tb.vm1, burner(0.1, 500.0, 20.0));
  const auto large = tb.engine->submit(tb.vm2, burner(0.1, 500.0, 200.0));
  tb.engine->run_for(5);
  const auto d_small = tb.engine->migrate(small, tb.vm3);
  const auto d_large = tb.engine->migrate(large, tb.vm3);
  EXPECT_GT(d_large, 3 * d_small);
}

TEST(Migration, CheckpointTrafficVisibleToMonitor) {
  sim::Testbed tb = two_vm_testbed();
  double vm1_out = 0.0;
  tb.engine->set_snapshot_sink(
      [&](sim::VmId vm, const metrics::Snapshot& s) {
        if (vm == tb.vm1)
          vm1_out = std::max(vm1_out, s.get(metrics::MetricId::kBytesOut));
      });
  const auto id = tb.engine->submit(tb.vm1, burner(1.0, 100.0, 100.0));
  tb.engine->run_for(5);
  tb.engine->migrate(id, tb.vm2);
  tb.engine->step();
  EXPECT_GT(vm1_out, 5.0e6);  // checkpoint stream left through VM1's NIC
}

TEST(Migration, MigratedWorkContinuesOnTargetHostSpeed) {
  // Moving a CPU job from host A (1.0x) to host B (1.33x) speeds it up.
  sim::Testbed tb = two_vm_testbed();
  Phase p;
  p.work_units = 200.0;
  p.nominal_rate = 1.0;
  p.cpu_per_unit = 1.0;
  p.speed_sensitivity = 1.0;
  p.rate_jitter = 0.0;
  p.mem.working_set_mb = 20.0;
  const auto id = tb.engine->submit(
      tb.vm1, std::make_unique<workloads::PhasedApp>("cpu",
                                                     std::vector<Phase>{p}));
  tb.engine->run_for(100);  // 100 units done on host A
  tb.engine->migrate(id, tb.vm2);
  EXPECT_TRUE(tb.engine->run_until_done(1000));
  // Remaining 100 units at 1.33x: ~75 s + ~1-2 s downtime.
  EXPECT_NEAR(static_cast<double>(tb.engine->instance(id).elapsed()), 178.0,
              6.0);
}

TEST(StageAwareMigrator, MigratesOnBehaviourChange) {
  // An app that flips from CPU-bound to IO-bound; preferences send IO to
  // VM2. Verify the migrator reacts to the classifier's change event.
  static const core::ClassificationPipeline pipeline =
      core::make_trained_pipeline();

  sim::Testbed tb = two_vm_testbed(9);
  monitor::ClusterMonitor mon(*tb.engine);

  Phase cpu_phase;
  cpu_phase.name = "cpu";
  cpu_phase.work_units = 150.0;
  cpu_phase.nominal_rate = 1.0;
  cpu_phase.cpu_per_unit = 1.0;
  cpu_phase.cpu_user_fraction = 0.97;
  cpu_phase.mem.working_set_mb = 30.0;
  Phase io_phase;
  io_phase.name = "io";
  io_phase.work_units = 150.0;
  io_phase.nominal_rate = 1.0;
  io_phase.cpu_per_unit = 0.2;
  io_phase.cpu_user_fraction = 0.3;
  io_phase.read_blocks_per_unit = 4000.0;
  io_phase.write_blocks_per_unit = 4500.0;
  io_phase.mem.working_set_mb = 30.0;
  const auto app = tb.engine->submit(
      tb.vm1, std::make_unique<workloads::PhasedApp>(
                  "flipper", std::vector<Phase>{cpu_phase, io_phase}));

  core::OnlineClassifier classifier(
      pipeline, {.sampling_interval_s = 5, .window = 4, .stability = 2});
  mon.bus().subscribe(
      [&](const metrics::Snapshot& s) { classifier.observe(s); });

  sched::StagePreferences prefs;
  prefs.prefer(core::ApplicationClass::kIo, tb.vm2);
  sched::StageAwareMigrator migrator(*tb.engine, classifier, app, prefs);

  EXPECT_TRUE(tb.engine->run_until_done(5000));
  EXPECT_EQ(migrator.migrations(), 1);
  EXPECT_GT(migrator.total_downtime(), 0);
  EXPECT_EQ(tb.engine->instance(app).vm, tb.vm2);
}

TEST(StageAwareMigrator, NoPreferenceNoMigration) {
  static const core::ClassificationPipeline pipeline =
      core::make_trained_pipeline();
  sim::Testbed tb = two_vm_testbed(10);
  monitor::ClusterMonitor mon(*tb.engine);
  const auto app = tb.engine->submit(tb.vm1, burner(1.0, 120.0));
  core::OnlineClassifier classifier(
      pipeline, {.sampling_interval_s = 5, .window = 4, .stability = 2});
  mon.bus().subscribe(
      [&](const metrics::Snapshot& s) { classifier.observe(s); });
  sched::StageAwareMigrator migrator(*tb.engine, classifier, app,
                                     sched::StagePreferences{});
  EXPECT_TRUE(tb.engine->run_until_done(5000));
  EXPECT_EQ(migrator.migrations(), 0);
  EXPECT_EQ(tb.engine->instance(app).vm, tb.vm1);
}

}  // namespace
}  // namespace appclass
