#include "sched/experiment.hpp"

#include <gtest/gtest.h>

#include "sched/policy.hpp"

namespace appclass::sched {
namespace {

std::map<char, core::ApplicationClass> paper_classes() {
  std::map<char, core::ApplicationClass> out;
  for (const auto& t : paper_job_types()) out[t.code] = t.expected_class;
  return out;
}

TEST(Experiment, PaperJobTypesAreSPN) {
  const auto types = paper_job_types();
  ASSERT_EQ(types.size(), 3u);
  EXPECT_EQ(types[0].code, 'S');
  EXPECT_EQ(types[0].expected_class, core::ApplicationClass::kCpu);
  EXPECT_EQ(types[1].code, 'P');
  EXPECT_EQ(types[2].code, 'N');
  for (const auto& t : types) EXPECT_NE(t.factory(0), nullptr);
}

TEST(Experiment, RunScheduleProducesNineOutcomes) {
  const auto types = paper_job_types();
  const Schedule spn = canonicalize({"SPN", "SPN", "SPN"});
  const auto outcome = run_schedule(spn, types, 7);
  EXPECT_EQ(outcome.jobs.size(), 9u);
  for (const auto& j : outcome.jobs) {
    EXPECT_GT(j.elapsed_seconds, 0);
    EXPECT_LT(j.vm_index, 3u);
    EXPECT_LE(j.elapsed_seconds, outcome.makespan_seconds);
  }
}

TEST(Experiment, ThroughputFormulas) {
  ScheduleOutcome o;
  o.jobs = {{'S', 0, 86400}, {'S', 1, 43200}, {'P', 0, 86400}};
  EXPECT_DOUBLE_EQ(o.system_throughput_jobs_per_day(), 1.0 + 2.0 + 1.0);
  EXPECT_DOUBLE_EQ(o.app_throughput_jobs_per_day('S'), 3.0);
  EXPECT_DOUBLE_EQ(o.app_throughput_jobs_per_day('P'), 1.0);
  EXPECT_DOUBLE_EQ(o.app_throughput_jobs_per_day('N'), 0.0);
}

TEST(Experiment, ClassAwareScheduleBeatsUniform) {
  // The headline effect: mixing classes on each VM beats segregating them.
  const auto types = paper_job_types();
  const auto spn = run_schedule(canonicalize({"SPN", "SPN", "SPN"}), types, 3);
  const auto uniform =
      run_schedule(canonicalize({"SSS", "PPP", "NNN"}), types, 3);
  EXPECT_GT(spn.system_throughput_jobs_per_day(),
            1.2 * uniform.system_throughput_jobs_per_day());
}

TEST(Experiment, WeightedAverageIsBetweenMinAndMax) {
  const auto types = paper_job_types();
  const auto schedules =
      enumerate_schedules({{'S', 1}, {'P', 1}, {'N', 1}}, 3, 1);
  const auto outcomes = run_all_schedules(schedules, types, 5);
  const double avg = weighted_average_throughput(schedules, outcomes);
  double mn = 1e18, mx = 0;
  for (const auto& o : outcomes) {
    mn = std::min(mn, o.system_throughput_jobs_per_day());
    mx = std::max(mx, o.system_throughput_jobs_per_day());
  }
  EXPECT_GE(avg, mn - 1e-9);
  EXPECT_LE(avg, mx + 1e-9);
}

TEST(Experiment, ConcurrentBeatsSequentialForMixedClasses) {
  const auto out = run_concurrent_vs_sequential(11);
  // Paper Table 4: concurrent finishes both jobs sooner than back-to-back.
  EXPECT_LT(out.concurrent_makespan_s, out.sequential_makespan_s);
  // Each job runs no faster co-scheduled than alone.
  EXPECT_GE(out.concurrent_ch3d_s, out.sequential_ch3d_s);
  EXPECT_GE(out.concurrent_postmark_s, out.sequential_postmark_s - 5);
}

TEST(Policy, ClassAwarePicksSPN) {
  const auto schedules = enumerate_schedules({{'S', 3}, {'P', 3}, {'N', 3}},
                                             3, 3);
  const auto& pick = pick_class_aware(schedules, paper_classes());
  EXPECT_EQ(to_string(pick.schedule), "{(NPS),(NPS),(NPS)}");
}

TEST(Policy, RandomPickRespectsMultiplicity) {
  const auto schedules = enumerate_schedules({{'S', 3}, {'P', 3}, {'N', 3}},
                                             3, 3);
  linalg::Rng rng(17);
  std::map<std::string, int> counts;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i)
    ++counts[to_string(pick_random(schedules, rng).schedule)];
  // The uniform schedule has multiplicity 6/1680; a heavy one has 324/1680.
  EXPECT_LT(counts["{(SSS),(PPP),(NNN)}"], 250);
  EXPECT_GT(counts["{(NPS),(NPS),(NPS)}"], 1800);  // 216/1680 ~ 12.8%
}

TEST(Policy, ClassesFromDatabase) {
  core::ApplicationDatabase db;
  auto add = [&](const char* app, core::ApplicationClass cls) {
    core::RunRecord r;
    r.application = app;
    r.config = "vm-256MB";
    r.application_class = cls;
    std::array<double, core::kClassCount> fr{};
    fr[core::index_of(cls)] = 1.0;
    r.composition = core::ClassComposition::from_fractions(fr, 10);
    r.elapsed_seconds = 100;
    db.record(r);
  };
  add("specseis_small", core::ApplicationClass::kCpu);
  add("postmark", core::ApplicationClass::kIo);
  const std::map<char, std::string> code_to_app = {
      {'S', "specseis_small"}, {'P', "postmark"}, {'N', "netpipe"}};
  // netpipe has no history yet -> nullopt.
  EXPECT_FALSE(classes_from_database(db, code_to_app, "vm-256MB").has_value());
  add("netpipe", core::ApplicationClass::kNetwork);
  const auto classes = classes_from_database(db, code_to_app, "vm-256MB");
  ASSERT_TRUE(classes.has_value());
  EXPECT_EQ(classes->at('S'), core::ApplicationClass::kCpu);
  EXPECT_EQ(classes->at('N'), core::ApplicationClass::kNetwork);
}

TEST(Policy, ClassAwareTieBreaksDeterministically) {
  // All jobs the same class: every schedule scores 3; the lexicographically
  // smallest rendering must be returned, and stably so.
  const auto schedules = enumerate_schedules({{'S', 3}, {'P', 3}, {'N', 3}},
                                             3, 3);
  std::map<char, core::ApplicationClass> same;
  same['S'] = same['P'] = same['N'] = core::ApplicationClass::kCpu;
  const auto& a = pick_class_aware(schedules, same);
  const auto& b = pick_class_aware(schedules, same);
  EXPECT_EQ(to_string(a.schedule), to_string(b.schedule));
}

}  // namespace
}  // namespace appclass::sched
