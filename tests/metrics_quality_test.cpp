#include "metrics/quality.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace appclass::metrics {
namespace {

Snapshot snap(SimTime t, const std::string& ip = "n") {
  Snapshot s;
  s.time = t;
  s.node_ip = ip;
  s.set(MetricId::kCpuUser, 50.0);
  s.set(MetricId::kCpuSystem, 10.0);
  s.set(MetricId::kIoBi, 1000.0);
  return s;
}

TEST(PlausibleRange, PercentagesAreBounded) {
  const PlausibleRange r = plausible_range(MetricId::kCpuUser);
  EXPECT_TRUE(r.contains(0.0));
  EXPECT_TRUE(r.contains(100.0));
  EXPECT_FALSE(r.contains(101.0));
  EXPECT_FALSE(r.contains(-1.0));
  EXPECT_FALSE(r.contains(std::numeric_limits<double>::quiet_NaN()));
  EXPECT_FALSE(r.contains(std::numeric_limits<double>::infinity()));
}

TEST(PlausibleRange, EveryMetricHasANonEmptyRange) {
  for (std::size_t i = 0; i < kMetricCount; ++i) {
    const PlausibleRange r = plausible_range(static_cast<MetricId>(i));
    EXPECT_LT(r.min, r.max) << info(static_cast<MetricId>(i)).name;
    EXPECT_GE(r.min, 0.0);
  }
}

TEST(SnapshotSanitizer, CleanStreamPassesUntouched) {
  SnapshotSanitizer sanitizer;
  for (SimTime t = 0; t < 10; ++t) {
    const SanitizeResult r = sanitizer.sanitize(snap(t));
    EXPECT_EQ(r.verdict, SanitizeVerdict::kAccepted);
    EXPECT_EQ(r.imputed_metrics, 0u);
    EXPECT_DOUBLE_EQ(r.snapshot.get(MetricId::kCpuUser), 50.0);
  }
  EXPECT_EQ(sanitizer.stats().accepted, 10u);
  EXPECT_EQ(sanitizer.stats().rejected(), 0u);
}

TEST(SnapshotSanitizer, ImputesNaNFromLastObservation) {
  SnapshotSanitizer sanitizer;
  EXPECT_TRUE(sanitizer.sanitize(snap(0)).ok());

  Snapshot s = snap(5);
  s.set(MetricId::kCpuUser, std::numeric_limits<double>::quiet_NaN());
  const SanitizeResult r = sanitizer.sanitize(s);
  EXPECT_EQ(r.verdict, SanitizeVerdict::kRepaired);
  EXPECT_EQ(r.imputed_metrics, 1u);
  EXPECT_DOUBLE_EQ(r.snapshot.get(MetricId::kCpuUser), 50.0);  // LOCF
  EXPECT_EQ(sanitizer.stats().imputed_values, 1u);
}

TEST(SnapshotSanitizer, ImputesOutOfRangeSpikes) {
  SnapshotSanitizer sanitizer;
  EXPECT_TRUE(sanitizer.sanitize(snap(0)).ok());

  Snapshot s = snap(5);
  s.set(MetricId::kCpuSystem, 4.2e17);  // garbage spike, far beyond 100%
  s.set(MetricId::kIoBi, -3.0);         // negative rate
  const SanitizeResult r = sanitizer.sanitize(s);
  EXPECT_EQ(r.verdict, SanitizeVerdict::kRepaired);
  EXPECT_EQ(r.imputed_metrics, 2u);
  EXPECT_DOUBLE_EQ(r.snapshot.get(MetricId::kCpuSystem), 10.0);
  EXPECT_DOUBLE_EQ(r.snapshot.get(MetricId::kIoBi), 1000.0);
}

TEST(SnapshotSanitizer, FallsBackToTrainingMeansAfterTtl) {
  SnapshotSanitizer sanitizer({.imputation_ttl_s = 10});
  std::array<double, kMetricCount> means{};
  means[index_of(MetricId::kCpuUser)] = 33.0;
  sanitizer.set_fallback(means);

  EXPECT_TRUE(sanitizer.sanitize(snap(0)).ok());
  Snapshot s = snap(25);  // last good observation is 25 s old, TTL is 10
  s.set(MetricId::kCpuUser, std::numeric_limits<double>::quiet_NaN());
  const SanitizeResult r = sanitizer.sanitize(s);
  EXPECT_EQ(r.verdict, SanitizeVerdict::kRepaired);
  EXPECT_DOUBLE_EQ(r.snapshot.get(MetricId::kCpuUser), 33.0);
}

TEST(SnapshotSanitizer, NeverObservedMetricUsesFallback) {
  SnapshotSanitizer sanitizer;
  std::array<double, kMetricCount> means{};
  means[index_of(MetricId::kCpuUser)] = 12.0;
  sanitizer.set_fallback(means);

  Snapshot s = snap(0);
  s.set(MetricId::kCpuUser, std::numeric_limits<double>::infinity());
  const SanitizeResult r = sanitizer.sanitize(s);
  EXPECT_EQ(r.verdict, SanitizeVerdict::kRepaired);
  EXPECT_DOUBLE_EQ(r.snapshot.get(MetricId::kCpuUser), 12.0);
}

TEST(SnapshotSanitizer, RejectsDuplicates) {
  SnapshotSanitizer sanitizer;
  EXPECT_TRUE(sanitizer.sanitize(snap(5)).ok());
  const SanitizeResult dup = sanitizer.sanitize(snap(5));
  EXPECT_EQ(dup.verdict, SanitizeVerdict::kRejectedDuplicate);
  EXPECT_EQ(sanitizer.stats().rejected_duplicate, 1u);
  // Same time on a different node is NOT a duplicate.
  EXPECT_TRUE(sanitizer.sanitize(snap(5, "other")).ok());
}

TEST(SnapshotSanitizer, RejectsStaleReplays) {
  SnapshotSanitizer sanitizer({.staleness_budget_s = 30});
  EXPECT_TRUE(sanitizer.sanitize(snap(100)).ok());
  const SanitizeResult stale = sanitizer.sanitize(snap(50));
  EXPECT_EQ(stale.verdict, SanitizeVerdict::kRejectedStale);
  EXPECT_EQ(sanitizer.stats().rejected_stale, 1u);
  // Mild reordering inside the budget is tolerated.
  EXPECT_TRUE(sanitizer.sanitize(snap(80)).ok());
}

TEST(SnapshotSanitizer, QuarantinesMostlyGarbageSnapshots) {
  SnapshotSanitizer sanitizer({.max_repair_fraction = 0.5});
  EXPECT_TRUE(sanitizer.sanitize(snap(0)).ok());

  Snapshot s = snap(5);
  for (std::size_t i = 0; i < kMetricCount; ++i)
    s.values[i] = std::numeric_limits<double>::quiet_NaN();
  const SanitizeResult r = sanitizer.sanitize(s);
  EXPECT_EQ(r.verdict, SanitizeVerdict::kQuarantined);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(sanitizer.stats().quarantined, 1u);
  // The garbage snapshot must not pollute the LOCF state.
  Snapshot later = snap(6);
  later.set(MetricId::kCpuUser, std::numeric_limits<double>::quiet_NaN());
  EXPECT_DOUBLE_EQ(sanitizer.sanitize(later).snapshot.get(MetricId::kCpuUser),
                   50.0);
}

TEST(SnapshotSanitizer, PerNodeStateIsIndependent) {
  SnapshotSanitizer sanitizer({.staleness_budget_s = 30});
  EXPECT_TRUE(sanitizer.sanitize(snap(1000, "a")).ok());
  // Node b starting at time 0 is not stale relative to node a's clock.
  EXPECT_TRUE(sanitizer.sanitize(snap(0, "b")).ok());
}

TEST(SnapshotSanitizer, StatsTalliesAddUp) {
  SnapshotSanitizer sanitizer;
  for (SimTime t = 0; t < 20; ++t) sanitizer.sanitize(snap(t));
  sanitizer.sanitize(snap(10));  // duplicate
  const auto& st = sanitizer.stats();
  EXPECT_EQ(st.processed(), 21u);
  EXPECT_EQ(st.accepted, 20u);
  EXPECT_EQ(st.rejected(), 1u);
}

}  // namespace
}  // namespace appclass::metrics
