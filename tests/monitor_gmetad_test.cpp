#include "monitor/gmetad.hpp"

#include <gtest/gtest.h>

#include "monitor/harness.hpp"
#include "sim/testbed.hpp"
#include "workloads/catalog.hpp"

namespace appclass::monitor {
namespace {

metrics::Snapshot node_snapshot(const std::string& ip, metrics::SimTime t,
                                double cpu_idle, double io = 0.0) {
  metrics::Snapshot s;
  s.node_ip = ip;
  s.time = t;
  s.set(metrics::MetricId::kCpuIdle, cpu_idle);
  s.set(metrics::MetricId::kIoBi, io);
  return s;
}

TEST(Gmetad, TracksLatestPerNode) {
  MetricBus bus;
  Gmetad gmetad(bus);
  bus.announce(node_snapshot("a", 0, 10.0));
  bus.announce(node_snapshot("a", 5, 90.0));
  ASSERT_TRUE(gmetad.latest("a").has_value());
  EXPECT_DOUBLE_EQ(gmetad.latest("a")->get(metrics::MetricId::kCpuIdle),
                   90.0);
  EXPECT_FALSE(gmetad.latest("zzz").has_value());
  EXPECT_EQ(gmetad.node_count(), 1u);
}

TEST(Gmetad, SummaryOverLiveNodes) {
  MetricBus bus;
  Gmetad gmetad(bus);
  bus.announce(node_snapshot("a", 0, 20.0));
  bus.announce(node_snapshot("b", 0, 60.0));
  bus.announce(node_snapshot("c", 0, 100.0));
  const auto sum = gmetad.summary(metrics::MetricId::kCpuIdle);
  ASSERT_TRUE(sum.has_value());
  EXPECT_EQ(sum->nodes, 3u);
  EXPECT_DOUBLE_EQ(sum->sum, 180.0);
  EXPECT_DOUBLE_EQ(sum->mean, 60.0);
  EXPECT_DOUBLE_EQ(sum->min, 20.0);
  EXPECT_DOUBLE_EQ(sum->max, 100.0);
}

TEST(Gmetad, StaleNodesExcluded) {
  MetricBus bus;
  Gmetad gmetad(bus, /*liveness_timeout_s=*/30);
  bus.announce(node_snapshot("old", 0, 50.0));
  bus.announce(node_snapshot("fresh", 100, 80.0));
  const auto live = gmetad.live_nodes();
  ASSERT_EQ(live.size(), 1u);
  EXPECT_EQ(live[0], "fresh");
  const auto sum = gmetad.summary(metrics::MetricId::kCpuIdle);
  EXPECT_EQ(sum->nodes, 1u);
  // The stale node's latest snapshot is still retrievable.
  EXPECT_TRUE(gmetad.latest("old").has_value());
}

TEST(Gmetad, StaleNodeRevives) {
  MetricBus bus;
  Gmetad gmetad(bus, 30);
  bus.announce(node_snapshot("a", 0, 50.0));
  bus.announce(node_snapshot("b", 100, 80.0));
  EXPECT_EQ(gmetad.live_nodes().size(), 1u);
  bus.announce(node_snapshot("a", 101, 55.0));
  EXPECT_EQ(gmetad.live_nodes().size(), 2u);
}

TEST(Gmetad, EmitsDeathEventWhenNodeGoesSilent) {
  MetricBus bus;
  Gmetad gmetad(bus, /*liveness_timeout_s=*/30);
  std::vector<NodeEvent> events;
  gmetad.on_node_event([&](const NodeEvent& e) { events.push_back(e); });

  bus.announce(node_snapshot("quiet", 0, 50.0));
  bus.announce(node_snapshot("chatty", 10, 80.0));
  EXPECT_TRUE(events.empty());  // both inside the liveness window

  // Cluster time advances past quiet's timeout via chatty's announcement.
  bus.announce(node_snapshot("chatty", 100, 80.0));
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].node_ip, "quiet");
  EXPECT_EQ(events[0].kind, NodeEvent::Kind::kDeath);
  EXPECT_EQ(events[0].time, 100);
  const auto dead = gmetad.dead_nodes();
  ASSERT_EQ(dead.size(), 1u);
  EXPECT_EQ(dead[0], "quiet");
  // Death is edge-triggered: further announcements do not repeat it.
  bus.announce(node_snapshot("chatty", 110, 80.0));
  EXPECT_EQ(events.size(), 1u);
}

TEST(Gmetad, EmitsRecoveryEventWhenNodeReturns) {
  MetricBus bus;
  Gmetad gmetad(bus, 30);
  std::vector<NodeEvent> events;
  gmetad.on_node_event([&](const NodeEvent& e) { events.push_back(e); });

  bus.announce(node_snapshot("a", 0, 50.0));
  bus.announce(node_snapshot("b", 100, 80.0));  // a declared dead
  bus.announce(node_snapshot("a", 120, 55.0));  // a recovers
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[1].node_ip, "a");
  EXPECT_EQ(events[1].kind, NodeEvent::Kind::kRecovery);
  EXPECT_EQ(events[1].time, 120);
  EXPECT_TRUE(gmetad.dead_nodes().empty());
  EXPECT_EQ(gmetad.live_nodes().size(), 2u);
}

TEST(Gmetad, ArgmaxArgmin) {
  MetricBus bus;
  Gmetad gmetad(bus);
  bus.announce(node_snapshot("busy", 0, 5.0, 9000.0));
  bus.announce(node_snapshot("calm", 0, 95.0, 100.0));
  EXPECT_EQ(gmetad.argmax(metrics::MetricId::kCpuIdle), "calm");
  EXPECT_EQ(gmetad.argmin(metrics::MetricId::kIoBi), "calm");
  EXPECT_EQ(gmetad.argmax(metrics::MetricId::kIoBi), "busy");
}

TEST(Gmetad, EmptyClusterReturnsNullopt) {
  MetricBus bus;
  Gmetad gmetad(bus);
  EXPECT_FALSE(gmetad.summary(metrics::MetricId::kCpuIdle).has_value());
  EXPECT_FALSE(gmetad.argmax(metrics::MetricId::kCpuIdle).has_value());
}

TEST(Gmetad, IntegratesWithSimulatedCluster) {
  sim::TestbedOptions opts;
  opts.four_vms = true;
  sim::Testbed tb = sim::make_testbed(opts);
  monitor::ClusterMonitor mon(*tb.engine);
  Gmetad gmetad(mon.bus());
  tb.engine->submit(tb.vm1, workloads::make_ch3d(200.0));
  tb.engine->run_for(60);
  EXPECT_EQ(gmetad.node_count(), 4u);
  EXPECT_EQ(gmetad.live_nodes().size(), 4u);
  // VM1 runs the CPU hog: it has the least idle CPU on the subnet.
  EXPECT_EQ(gmetad.argmin(metrics::MetricId::kCpuIdle), "10.0.0.1");
}

}  // namespace
}  // namespace appclass::monitor
