#include "core/serialize.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <stdexcept>

#include "core_test_util.hpp"

namespace appclass::core {
namespace {

ClassificationPipeline trained() {
  ClassificationPipeline pipeline;
  pipeline.train(testing::synthetic_training(25));
  return pipeline;
}

TEST(Serialize, HeaderAndStructure) {
  const std::string text = save_pipeline(trained());
  EXPECT_EQ(text.rfind("appclass-pipeline v2", 0), 0u);
  EXPECT_NE(text.find("metrics 8 cpu_system cpu_user"), std::string::npos);
  EXPECT_NE(text.find("pca 8 2"), std::string::npos);
  EXPECT_NE(text.find("knn 125 3 euclidean"), std::string::npos);
  // v2 ends with a 16-hex-digit FNV-1a checksum footer.
  const auto footer = text.rfind("checksum ");
  ASSERT_NE(footer, std::string::npos);
  const std::string digest =
      text.substr(footer + 9, text.size() - footer - 10);
  EXPECT_EQ(digest.size(), 16u);
  EXPECT_EQ(digest.find_first_not_of("0123456789abcdef"), std::string::npos);
  EXPECT_EQ(text.back(), '\n');
}

TEST(Serialize, RoundTripPreservesEveryPrediction) {
  const ClassificationPipeline original = trained();
  const ClassificationPipeline restored =
      load_pipeline(save_pipeline(original));
  ASSERT_TRUE(restored.trained());
  for (std::size_t c = 0; c < kClassCount; ++c) {
    const auto pool =
        testing::synthetic_pool(class_from_index(c), 25, 400 + c);
    const auto a = original.classify(pool);
    const auto b = restored.classify(pool);
    EXPECT_EQ(a.class_vector, b.class_vector);
    EXPECT_LT(a.projected.max_abs_diff(b.projected), 1e-12);
  }
}

TEST(Serialize, RoundTripPreservesModelParameters) {
  const ClassificationPipeline original = trained();
  const ClassificationPipeline restored =
      load_pipeline(save_pipeline(original));
  EXPECT_EQ(restored.preprocessor().dimension(),
            original.preprocessor().dimension());
  EXPECT_EQ(restored.pca().components(), original.pca().components());
  EXPECT_EQ(restored.knn().training_size(), original.knn().training_size());
  EXPECT_EQ(restored.knn().k(), original.knn().k());
  EXPECT_LT(restored.pca().projection().max_abs_diff(
                original.pca().projection()),
            1e-15);
}

TEST(Serialize, SecondRoundTripIsIdentical) {
  const std::string once = save_pipeline(trained());
  const std::string twice = save_pipeline(load_pipeline(once));
  EXPECT_EQ(once, twice);
}

TEST(Serialize, RejectsBadMagic) {
  EXPECT_THROW(load_pipeline("not a pipeline\n"), std::runtime_error);
  EXPECT_THROW(load_pipeline(""), std::runtime_error);
}

TEST(Serialize, RejectsTruncatedInput) {
  std::string text = save_pipeline(trained());
  text.resize(text.size() / 2);
  EXPECT_THROW(load_pipeline(text), std::runtime_error);
}

TEST(Serialize, TruncationReportsMissingFooter) {
  std::string text = save_pipeline(trained());
  text.resize(text.size() * 2 / 3);
  try {
    load_pipeline(text);
    FAIL() << "truncated file must not load";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("truncated"), std::string::npos)
        << e.what();
  }
}

TEST(Serialize, BitFlipReportsChecksumMismatch) {
  std::string text = save_pipeline(trained());
  // Flip one bit in a numeric payload character mid-file.
  const auto pos = text.find("pca-mean") + 10;
  text[pos] = static_cast<char>(text[pos] ^ 0x01);
  try {
    load_pipeline(text);
    FAIL() << "corrupt file must not load";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("checksum mismatch"),
              std::string::npos)
        << e.what();
  }
}

TEST(Serialize, TamperedFooterReportsChecksumMismatch) {
  std::string text = save_pipeline(trained());
  const auto footer = text.rfind("checksum ");
  ASSERT_NE(footer, std::string::npos);
  char& digit = text[footer + 9];
  digit = digit == '0' ? '1' : '0';
  EXPECT_THROW(load_pipeline(text), std::runtime_error);
}

TEST(Serialize, LoadsLegacyV1FilesWithoutFooter) {
  // Pre-checksum files begin with the v1 magic and have no footer; they
  // must remain loadable for backward compatibility.
  std::string text = save_pipeline(trained());
  const auto footer = text.rfind("checksum ");
  ASSERT_NE(footer, std::string::npos);
  text.erase(footer);
  text.replace(text.find("appclass-pipeline v2"), 20,
               "appclass-pipeline v1");
  const ClassificationPipeline restored = load_pipeline(text);
  EXPECT_TRUE(restored.trained());
}

TEST(Serialize, RejectsUnknownMetric) {
  std::string text = save_pipeline(trained());
  const auto pos = text.find("cpu_system");
  text.replace(pos, 10, "cpu_bogus!");
  EXPECT_THROW(load_pipeline(text), std::runtime_error);
}

TEST(Serialize, RejectsUnknownClassLabel) {
  std::string text = save_pipeline(trained());
  const auto pos = text.find("\nidle ");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos + 1, 4, "lazy");
  EXPECT_THROW(load_pipeline(text), std::runtime_error);
}

TEST(Serialize, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/appclass_pipeline.txt";
  const ClassificationPipeline original = trained();
  save_pipeline_file(original, path);
  const ClassificationPipeline restored = load_pipeline_file(path);
  const auto pool = testing::synthetic_pool(ApplicationClass::kIo, 10, 999);
  EXPECT_EQ(restored.classify(pool).application_class,
            original.classify(pool).application_class);
  std::remove(path.c_str());
}

TEST(Serialize, MissingFileThrows) {
  EXPECT_THROW(load_pipeline_file("/nonexistent/dir/model.txt"),
               std::runtime_error);
}

TEST(Serialize, EmptyFileHasDistinctMessage) {
  const std::string path = ::testing::TempDir() + "/appclass_empty.txt";
  { std::ofstream out(path); }
  try {
    load_pipeline_file(path);
    FAIL() << "empty file must not load";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("empty model file"),
              std::string::npos)
        << e.what();
  }
  std::remove(path.c_str());
}

TEST(Serialize, TruncationInsideChecksumFooterIsDistinct) {
  // Cut mid-footer: the "checksum " tag survives but only part of the
  // digest does — a different failure than a missing footer, and it must
  // say so instead of hashing garbage.
  std::string text = save_pipeline(trained());
  const auto footer = text.rfind("checksum ");
  ASSERT_NE(footer, std::string::npos);
  text.resize(footer + 9 + 7);  // 7 of the 16 digest characters
  try {
    load_pipeline(text);
    FAIL() << "footer-truncated file must not load";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("truncated checksum footer"),
              std::string::npos)
        << e.what();
  }
}

TEST(Serialize, ValidChecksumWithUnknownFutureSectionIsRejected) {
  // A file written by a newer format revision: extra section appended
  // before the footer, checksum recomputed so it validates. The loader
  // must refuse the unknown section rather than silently ignore state it
  // does not understand.
  std::string text = save_pipeline(trained());
  const auto footer = text.rfind("checksum ");
  ASSERT_NE(footer, std::string::npos);
  std::string body =
      text.substr(0, footer) + "novelty-ensemble 3 0.5 0.25 0.125\n";
  // Recompute the footer exactly as the writer does: FNV-1a-64 over the
  // body up to and including the "checksum " tag.
  body.append("checksum ");
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  const std::string_view hashed(body.data(), body.size() - 9);
  for (const char c : hashed) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string digest(16, '0');
  for (int i = 15; i >= 0; --i, hash >>= 4)
    digest[static_cast<std::size_t>(i)] = kDigits[hash & 0xf];
  body += digest;
  body += '\n';
  try {
    load_pipeline(body);
    FAIL() << "unknown future section must not load silently";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("unknown section"),
              std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("novelty-ensemble"),
              std::string::npos)
        << e.what();
  }
}

TEST(Serialize, SaveIsAtomicNoTempLeftBehind) {
  const std::string path = ::testing::TempDir() + "/appclass_atomic.txt";
  save_pipeline_file(trained(), path);
  std::ifstream check(path + ".tmp");
  EXPECT_FALSE(check.good());  // temp was renamed over the target
  const ClassificationPipeline restored = load_pipeline_file(path);
  EXPECT_TRUE(restored.trained());
  std::remove(path.c_str());
}

TEST(Serialize, SaveFailureCarriesPathAndErrnoContext) {
  try {
    save_pipeline_file(trained(), "/nonexistent/dir/model.txt");
    FAIL() << "unwritable path must not succeed";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("/nonexistent/dir/model.txt"), std::string::npos)
        << what;
    EXPECT_NE(what.find("No such file or directory"), std::string::npos)
        << what;
  }
}

}  // namespace
}  // namespace appclass::core
