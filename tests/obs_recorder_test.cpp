// Flight recorder: ring overwrite semantics, Chrome trace JSON structure,
// file dumps, and the post-mortem crash dump.
#include "obs/recorder.hpp"

#include <gtest/gtest.h>

#include <cctype>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/trace.hpp"

namespace appclass {
namespace {

/// Minimal recursive-descent JSON reader: validates structure (it does not
/// build a DOM) and fails on anything the grammar rejects — enough to
/// prove a dump is loadable, without a JSON dependency.
class JsonValidator {
 public:
  explicit JsonValidator(const std::string& text) : text_(text) {}

  bool valid() {
    pos_ = 0;
    const bool ok = value() && (skip_ws(), pos_ == text_.size());
    return ok;
  }

 private:
  bool value() {
    skip_ws();
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') { ++pos_; return true; }
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
        const char esc = text_[pos_];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= text_.size() || !std::isxdigit(
                    static_cast<unsigned char>(text_[pos_])))
              return false;
          }
        } else if (esc != '"' && esc != '\\' && esc != '/' && esc != 'b' &&
                   esc != 'f' && esc != 'n' && esc != 'r' && esc != 't') {
          return false;
        }
      }
      ++pos_;
    }
    return false;
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    return pos_ > start;
  }

  bool literal(const char* word) {
    const std::size_t len = std::string(word).size();
    if (text_.compare(pos_, len, word) != 0) return false;
    pos_ += len;
    return true;
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\n' ||
            text_[pos_] == '\t' || text_[pos_] == '\r'))
      ++pos_;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

obs::TraceContext make_context(std::uint64_t trace, std::uint64_t span,
                               std::uint64_t parent) {
  obs::TraceContext ctx;
  ctx.trace_id = trace;
  ctx.span_id = span;
  ctx.parent_span_id = parent;
  return ctx;
}

TEST(ObsRecorder, RecordsSpansAndInstants) {
  obs::TraceRecorder recorder;
  recorder.record_span("alpha", make_context(1, 2, 0), 10, 5,
                       {{"key", "value"}});
  recorder.record_instant("beta", make_context(1, 3, 2), {});
  const auto events = recorder.events();
  ASSERT_EQ(events.size(), 2u);
  // record_instant stamps wall time while the span carries an explicit
  // ts, so look events up by name instead of assuming sort order.
  const obs::TraceEvent* alpha = nullptr;
  const obs::TraceEvent* beta = nullptr;
  for (const auto& e : events) {
    if (e.name == "alpha") alpha = &e;
    if (e.name == "beta") beta = &e;
  }
  ASSERT_NE(alpha, nullptr);
  EXPECT_EQ(alpha->phase, obs::TraceEvent::Phase::kSpan);
  EXPECT_EQ(alpha->dur_us, 5);
  ASSERT_EQ(alpha->attrs.size(), 1u);
  EXPECT_EQ(alpha->attrs[0].key, "key");
  ASSERT_NE(beta, nullptr);
  EXPECT_EQ(beta->phase, obs::TraceEvent::Phase::kInstant);
  EXPECT_EQ(beta->context.parent_span_id, 2u);
}

TEST(ObsRecorder, RingOverwritesOldestKeepsNewest) {
  obs::TraceRecorder recorder;
  recorder.set_thread_capacity(8);
  // A fresh thread picks up the configured capacity for its ring.
  std::thread writer([&recorder] {
    for (int i = 0; i < 20; ++i)
      recorder.record_span("e" + std::to_string(i), make_context(1, 1, 0),
                           i, 1, {});
  });
  writer.join();

  const auto events = recorder.events();
  ASSERT_EQ(events.size(), 8u);
  // Oldest-first unwrap: the survivors are exactly e12..e19 in order.
  for (int i = 0; i < 8; ++i)
    EXPECT_EQ(events[static_cast<std::size_t>(i)].name,
              "e" + std::to_string(12 + i));
}

TEST(ObsRecorder, EventsFromExitedThreadsSurvive) {
  obs::TraceRecorder recorder;
  std::thread t1([&] {
    recorder.record_span("from_t1", make_context(1, 1, 0), 1, 1, {});
  });
  std::thread t2([&] {
    recorder.record_span("from_t2", make_context(1, 2, 0), 2, 1, {});
  });
  t1.join();
  t2.join();
  recorder.record_span("from_main", make_context(1, 3, 0), 3, 1, {});

  const auto events = recorder.events();
  ASSERT_EQ(events.size(), 3u);
  // Timestamp-sorted merge across all three rings.
  EXPECT_EQ(events[0].name, "from_t1");
  EXPECT_EQ(events[1].name, "from_t2");
  EXPECT_EQ(events[2].name, "from_main");
  // Distinct threads got distinct recorder tids.
  EXPECT_NE(events[0].tid, events[2].tid);
}

TEST(ObsRecorder, ChromeJsonIsStructurallyValid) {
  obs::TraceRecorder recorder;
  recorder.record_span("span \"quoted\" name\n", make_context(7, 8, 0), 100,
                       50, {{"shard", "0..256"}, {"pruned_tiles", 3}});
  recorder.record_instant("log.line", make_context(7, 9, 8),
                          {{"log", "a=1 b=\"x y\""}});
  recorder.record_span("plain", obs::TraceContext{}, 200, 10, {});
  const std::string json = recorder.to_chrome_json();

  JsonValidator validator(json);
  EXPECT_TRUE(validator.valid()) << json;

  // Chrome trace_event envelope and phases.
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\":50"), std::string::npos);
  // Ids rendered as hex strings under args.
  EXPECT_NE(json.find("\"trace_id\":\"7\""), std::string::npos);
  EXPECT_NE(json.find("\"parent_span_id\":\"8\""), std::string::npos);
}

TEST(ObsRecorder, ClearEmptiesEveryRing) {
  obs::TraceRecorder recorder;
  recorder.record_span("a", make_context(1, 1, 0), 1, 1, {});
  EXPECT_EQ(recorder.size(), 1u);
  recorder.clear();
  EXPECT_EQ(recorder.size(), 0u);
  // Rings stay usable after a clear.
  recorder.record_span("b", make_context(1, 2, 0), 2, 1, {});
  EXPECT_EQ(recorder.size(), 1u);
}

TEST(ObsRecorder, DumpToFileWritesTheJson) {
  obs::TraceRecorder recorder;
  recorder.record_span("dumped", make_context(1, 1, 0), 1, 1, {});
  const std::string path =
      ::testing::TempDir() + "appclass_recorder_dump.json";
  ASSERT_TRUE(recorder.dump_to_file(path));
  std::ifstream in(path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), recorder.to_chrome_json());
  std::remove(path.c_str());
}

TEST(ObsRecorderDeathTest, CrashDumpWritesFlightRecorderPostMortem) {
  const std::string path =
      ::testing::TempDir() + "appclass_crash_dump.json";
  std::remove(path.c_str());
  EXPECT_EXIT(
      {
        obs::install_crash_dump(path);
        obs::TraceRecorder::global().record_span(
            "doomed_span", make_context(11, 12, 0), 1, 1, {});
        std::abort();
      },
      ::testing::KilledBySignal(SIGABRT), "");

  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "crash handler did not write " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string json = buffer.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("doomed_span"), std::string::npos);
  JsonValidator validator(json);
  EXPECT_TRUE(validator.valid());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace appclass
