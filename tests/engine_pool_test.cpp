// Thread-pool and execution-context semantics, plus the concurrency
// stress cases the TSan CI job runs: nested parallel_for, many small
// jobs racing through the work-stealing deques, and concurrent online
// streams pushing into a FleetStream while it drains.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "core/pipeline.hpp"
#include "core/trainer.hpp"
#include "engine/context.hpp"
#include "engine/fleet.hpp"
#include "engine/thread_pool.hpp"
#include "monitor/bus.hpp"
#include "obs/metrics.hpp"

namespace appclass {
namespace {

TEST(EngineThreadPool, RunsEveryIndexExactlyOnce) {
  engine::ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::vector<std::atomic<int>> seen(1000);
  pool.parallel_for(seen.size(),
                    [&](std::size_t i) { seen[i].fetch_add(1); });
  for (const auto& s : seen) EXPECT_EQ(s.load(), 1);
}

TEST(EngineThreadPool, ZeroResolvesToHardwareConcurrency) {
  engine::ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
}

TEST(EngineContext, SerialContextRunsInlineOnCallerThread) {
  const auto ctx = engine::ExecutionContext::serial();
  EXPECT_FALSE(ctx->pooled());
  const auto caller = std::this_thread::get_id();
  std::vector<std::thread::id> ran(8);
  ctx->for_each(ran.size(),
                [&](std::size_t i) { ran[i] = std::this_thread::get_id(); });
  for (const auto id : ran) EXPECT_EQ(id, caller);
}

TEST(EngineThreadPool, NestedParallelForDoesNotDeadlock) {
  engine::ThreadPool pool(3);
  std::atomic<int> total{0};
  pool.parallel_for(8, [&](std::size_t) {
    pool.parallel_for(8, [&](std::size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 64);
}

TEST(EngineThreadPool, PropagatesFirstException) {
  engine::ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(100,
                                 [&](std::size_t i) {
                                   if (i == 37)
                                     throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
  // The pool must stay usable after an exceptional job.
  std::atomic<int> total{0};
  pool.parallel_for(10, [&](std::size_t) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 10);
}

TEST(EngineThreadPool, ManySmallJobsStress) {
  engine::ThreadPool pool(4);
  std::atomic<long> total{0};
  for (int round = 0; round < 200; ++round)
    pool.parallel_for(17, [&](std::size_t i) {
      total.fetch_add(static_cast<long>(i));
    });
  EXPECT_EQ(total.load(), 200L * (16 * 17 / 2));
}

TEST(EngineContext, ShardBoundariesDependOnlyOnCountAndGrain) {
  const auto serial = engine::ExecutionContext::serial();
  const auto pooled = engine::ExecutionContext::make(4);
  for (const std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{255},
                              std::size_t{256}, std::size_t{257},
                              std::size_t{1000}}) {
    std::vector<std::pair<std::size_t, std::size_t>> serial_shards;
    serial->for_shards(n, 256, [&](std::size_t b, std::size_t e, std::size_t) {
      serial_shards.emplace_back(b, e);
    });
    std::mutex mutex;
    std::vector<std::pair<std::size_t, std::size_t>> pooled_shards;
    pooled->for_shards(n, 256, [&](std::size_t b, std::size_t e, std::size_t) {
      const std::lock_guard lock(mutex);
      pooled_shards.emplace_back(b, e);
    });
    std::sort(pooled_shards.begin(), pooled_shards.end());
    EXPECT_EQ(serial_shards, pooled_shards) << "n=" << n;
    // Shards must tile [0, n) without gap or overlap.
    std::size_t covered = 0;
    for (const auto& [b, e] : serial_shards) {
      EXPECT_EQ(b, covered);
      EXPECT_LT(b, e);
      covered = e;
    }
    EXPECT_EQ(covered, n);
  }
}

TEST(EngineContext, MakeZeroUsesHardwareConcurrency) {
  const auto ctx = engine::ExecutionContext::make(0);
  EXPECT_GE(ctx->parallelism(), 1u);
}

TEST(EngineThreadPool, CountsJobsAndJobWaits) {
  const auto jobs_before = [] {
    return obs::MetricsRegistry::global()
        .counter("appclass_engine_jobs_total")
        .value();
  };
  obs::Histogram& wait =
      obs::MetricsRegistry::global().histogram("appclass_engine_job_wait_seconds");

  engine::ThreadPool pool(2);
  const std::uint64_t jobs0 = jobs_before();
  const std::uint64_t waits0 = wait.count();
  pool.parallel_for(8, [](std::size_t) {});
  // One job per parallel_for; one wait observation per claimed task.
  EXPECT_EQ(jobs_before(), jobs0 + 1);
  EXPECT_EQ(wait.count(), waits0 + 8);
}

TEST(EngineThreadPool, WorkerQueueDepthGaugesDrainToZero) {
  engine::ThreadPool pool(3);
  std::atomic<int> total{0};
  pool.parallel_for(64, [&](std::size_t) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 64);
  // parallel_for returns only after every task has been claimed, so each
  // per-worker depth gauge (including the caller's deque) reads zero.
  const auto snapshot = obs::MetricsRegistry::global().snapshot();
  std::size_t seen = 0;
  for (const auto& g : snapshot.gauges) {
    if (g.name != "appclass_engine_worker_queue_depth") continue;
    EXPECT_EQ(g.value, 0.0) << g.labels[0].second;
    ++seen;
  }
  // Workers "0".."2" plus the "caller" deque.
  EXPECT_GE(seen, 4u);
}

TEST(EngineFleet, ConcurrentPushersAndDrainerAreRaceFree) {
  // Many producer threads announce interleaved node streams onto a bus
  // the stream is attached to, while the consumer drains concurrently —
  // the TSan job's main quarry.
  static const core::ClassificationPipeline pipeline = [] {
    core::PipelineOptions options;
    options.parallelism = 4;
    return core::make_trained_pipeline(options);
  }();

  monitor::MetricBus bus;
  engine::FleetStream stream(pipeline);
  stream.attach(bus);

  const auto& pools = core::collect_training_pools();
  std::atomic<std::size_t> finished{0};
  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < pools.size(); ++p) {
    producers.emplace_back([&, p] {
      for (const auto& snapshot : pools[p].pool.snapshots())
        bus.announce(snapshot);
      finished.fetch_add(1);
    });
  }
  // Drain concurrently with the producers, then once more after they are
  // all done to sweep the tail.
  std::size_t drained = 0;
  while (finished.load() < producers.size()) drained += stream.drain();
  for (auto& t : producers) t.join();
  drained += stream.drain();
  stream.detach();

  std::size_t expected = 0;
  for (const auto& lp : pools)
    for (const auto& snapshot : lp.pool.snapshots())
      if (snapshot.time % 5 == 0) ++expected;
  EXPECT_EQ(drained, expected);
  EXPECT_EQ(stream.online().classified_count(), expected);
  for (const auto& lp : pools)
    EXPECT_TRUE(stream.online().current_class(lp.pool.node_ip()).has_value());
}

TEST(EngineFleet, ConcurrentBatchClassifiersShareOnePipeline) {
  static const core::ClassificationPipeline pipeline = [] {
    core::PipelineOptions options;
    options.parallelism = 2;
    return core::make_trained_pipeline(options);
  }();
  const auto& pools = core::collect_training_pools();
  std::vector<metrics::DataPool> inputs;
  for (const auto& lp : pools) inputs.push_back(lp.pool);

  // Two threads running fleet batches against the same pipeline and the
  // same execution context at once.
  const engine::BatchClassifier batch(pipeline);
  std::vector<core::ClassificationResult> a, b;
  std::thread other([&] { a = batch.classify_pools(inputs); });
  b = batch.classify_pools(inputs);
  other.join();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].class_vector, b[i].class_vector);
    EXPECT_EQ(a[i].confidences, b[i].confidences);
  }
}

}  // namespace
}  // namespace appclass
