// Hardened HTTP GET client: every failure mode a misbehaving or hostile
// peer can trigger gets a distinct error, so per-worker scrape health
// can say *why* a worker is unreachable. The fixture is a raw canned-
// response server — the client must survive peers that are not HTTP
// servers at all.
#include "dist/http.hpp"

#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <string>
#include <thread>

namespace appclass::dist {
namespace {

/// One-shot server: accepts a single connection, writes `response`
/// verbatim (or nothing when `stall` is set), then closes.
class CannedServer {
 public:
  explicit CannedServer(std::string response, bool stall = false) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(listen_fd_, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;  // ephemeral
    EXPECT_EQ(::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                     sizeof(addr)),
              0);
    socklen_t len = sizeof(addr);
    EXPECT_EQ(::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                            &len),
              0);
    port_ = ntohs(addr.sin_port);
    EXPECT_EQ(::listen(listen_fd_, 1), 0);
    thread_ = std::thread([this, response = std::move(response), stall] {
      const int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd < 0) return;
      if (stall) {
        // Hold the connection open without a byte until the client's
        // read timeout trips; the client closing unblocks this recv.
        char byte;
        (void)::recv(fd, &byte, 1, 0);
        while (::recv(fd, &byte, 1, 0) > 0) {
        }
      } else {
        // Drain the request first: closing with unread inbound data
        // turns into an RST that can discard the buffered response.
        std::string request;
        char buffer[1024];
        while (request.find("\r\n\r\n") == std::string::npos) {
          const ssize_t n = ::recv(fd, buffer, sizeof buffer, 0);
          if (n <= 0) break;
          request.append(buffer, static_cast<std::size_t>(n));
        }
        (void)!::write(fd, response.data(), response.size());
      }
      ::close(fd);
    });
  }

  ~CannedServer() {
    thread_.join();
    ::close(listen_fd_);
  }

  std::uint16_t port() const { return port_; }

 private:
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::thread thread_;
};

TEST(DistHttpTest, CompleteResponseReturnsOkWithBody) {
  CannedServer server(
      "HTTP/1.1 200 OK\r\nContent-Length: 5\r\n\r\nhello");
  const HttpResult result = http_get_ex("127.0.0.1", server.port(), "/x");
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result.error, HttpError::kOk);
  EXPECT_EQ(result.status, 200);
  EXPECT_EQ(result.body, "hello");
}

TEST(DistHttpTest, NonOkStatusIsDistinctFromTransportFailure) {
  CannedServer server(
      "HTTP/1.1 404 Not Found\r\nContent-Length: 9\r\n\r\nnot found");
  const HttpResult result = http_get_ex("127.0.0.1", server.port(), "/x");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.error, HttpError::kStatus);
  EXPECT_EQ(result.status, 404);
  EXPECT_EQ(result.body, "not found");
}

TEST(DistHttpTest, ResponseOverCapIsTooLarge) {
  const std::string body(4096, 'x');
  CannedServer server("HTTP/1.1 200 OK\r\n\r\n" + body);
  HttpGetOptions options;
  options.max_response_bytes = 512;
  const HttpResult result =
      http_get_ex("127.0.0.1", server.port(), "/x", options);
  EXPECT_EQ(result.error, HttpError::kTooLarge);
}

TEST(DistHttpTest, AnnouncedOversizeBodyRejectedBeforeDraining) {
  // Content-Length alone exceeds the cap: the client must abort on the
  // headers, not buffer gigabytes first.
  CannedServer server(
      "HTTP/1.1 200 OK\r\nContent-Length: 999999999\r\n\r\nstart");
  HttpGetOptions options;
  options.max_response_bytes = 1024;
  const HttpResult result =
      http_get_ex("127.0.0.1", server.port(), "/x", options);
  EXPECT_EQ(result.error, HttpError::kTooLarge);
}

TEST(DistHttpTest, ChunkedTransferEncodingIsRejectedNotMisparsed) {
  CannedServer server(
      "HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n"
      "5\r\nhello\r\n0\r\n\r\n");
  const HttpResult result = http_get_ex("127.0.0.1", server.port(), "/x");
  EXPECT_EQ(result.error, HttpError::kChunked);
}

TEST(DistHttpTest, SilentPeerTripsTheReadTimeout) {
  CannedServer server("", /*stall=*/true);
  HttpGetOptions options;
  options.timeout_ms = 200;
  const HttpResult result =
      http_get_ex("127.0.0.1", server.port(), "/x", options);
  EXPECT_EQ(result.error, HttpError::kTimeout);
}

TEST(DistHttpTest, RefusedConnectionIsConnectError) {
  // Bind-then-close guarantees a port with nothing listening.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  ASSERT_EQ(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  const std::uint16_t port = ntohs(addr.sin_port);
  ::close(fd);

  const HttpResult result = http_get_ex("127.0.0.1", port, "/x");
  EXPECT_EQ(result.error, HttpError::kConnect);
  EXPECT_EQ(result.status, 0);
}

TEST(DistHttpTest, NonHttpBytesAreProtocolError) {
  CannedServer server("I am not an HTTP server\r\n\r\n");
  const HttpResult result = http_get_ex("127.0.0.1", server.port(), "/x");
  EXPECT_EQ(result.error, HttpError::kProtocol);
}

TEST(DistHttpTest, MissingHeaderTerminatorIsProtocolError) {
  CannedServer server("HTTP/1.1 200 OK\r\nTruncated-Mid-Head");
  const HttpResult result = http_get_ex("127.0.0.1", server.port(), "/x");
  EXPECT_EQ(result.error, HttpError::kProtocol);
}

TEST(DistHttpTest, ErrorNamesAreStableForScrapeHealth) {
  EXPECT_STREQ(to_string(HttpError::kOk), "ok");
  EXPECT_STREQ(to_string(HttpError::kConnect), "connect");
  EXPECT_STREQ(to_string(HttpError::kTimeout), "timeout");
  EXPECT_STREQ(to_string(HttpError::kTooLarge), "too-large");
  EXPECT_STREQ(to_string(HttpError::kChunked), "chunked");
  EXPECT_STREQ(to_string(HttpError::kProtocol), "protocol");
  EXPECT_STREQ(to_string(HttpError::kStatus), "status");
}

TEST(DistHttpTest, ThinWrapperReturnsBodyOnlyOn200) {
  {
    CannedServer server("HTTP/1.1 200 OK\r\n\r\npayload");
    const auto body = http_get("127.0.0.1", server.port(), "/x");
    ASSERT_TRUE(body.has_value());
    EXPECT_EQ(*body, "payload");
  }
  {
    CannedServer server("HTTP/1.1 500 Oops\r\n\r\nboom");
    EXPECT_FALSE(http_get("127.0.0.1", server.port(), "/x").has_value());
  }
}

}  // namespace
}  // namespace appclass::dist
