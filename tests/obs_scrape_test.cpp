// Scrape endpoint: route behaviour, Prometheus payload, and request
// accounting, exercised over real loopback sockets.
#include "obs/scrape.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "obs/metrics.hpp"
#include "obs/recorder.hpp"
#include "obs/trace.hpp"

namespace appclass {
namespace {

/// Blocking one-shot HTTP client: sends `request_line` + empty header
/// block to 127.0.0.1:port and returns the whole response.
std::string http_request(std::uint16_t port,
                         const std::string& request_line) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return {};
  }
  const std::string request =
      request_line + " HTTP/1.1\r\nHost: localhost\r\n\r\n";
  ::send(fd, request.data(), request.size(), 0);
  std::string response;
  char buffer[4096];
  ssize_t n = 0;
  while ((n = ::recv(fd, buffer, sizeof buffer, 0)) > 0)
    response.append(buffer, static_cast<std::size_t>(n));
  ::close(fd);
  return response;
}

class ObsScrapeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    server_ = std::make_unique<obs::ScrapeServer>();  // port 0: ephemeral
    ASSERT_TRUE(server_->start());
    ASSERT_NE(server_->port(), 0);
  }

  void TearDown() override { server_->stop(); }

  std::unique_ptr<obs::ScrapeServer> server_;
};

TEST_F(ObsScrapeTest, HealthzRespondsOk) {
  const std::string response =
      http_request(server_->port(), "GET /healthz");
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(response.find("ok"), std::string::npos);
}

TEST_F(ObsScrapeTest, MetricsServesPrometheusText) {
  obs::MetricsRegistry::global()
      .counter("appclass_scrape_test_probe_total")
      .inc();
  const std::string response =
      http_request(server_->port(), "GET /metrics");
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(response.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(response.find("# TYPE"), std::string::npos);
  EXPECT_NE(response.find("appclass_scrape_test_probe_total"),
            std::string::npos);
}

TEST_F(ObsScrapeTest, TracesRecentServesChromeJson) {
  obs::TraceRecorder::global().clear();
  obs::set_tracing_enabled(true);
  { obs::TraceSpan span("scraped_span"); }
  obs::set_tracing_enabled(false);

  const std::string response =
      http_request(server_->port(), "GET /traces/recent");
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(response.find("application/json"), std::string::npos);
  EXPECT_NE(response.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(response.find("scraped_span"), std::string::npos);
}

TEST_F(ObsScrapeTest, UnknownPathIs404) {
  const std::string response =
      http_request(server_->port(), "GET /nope");
  EXPECT_NE(response.find("HTTP/1.1 404"), std::string::npos);
}

TEST_F(ObsScrapeTest, NonGetIs405) {
  const std::string response =
      http_request(server_->port(), "POST /metrics");
  EXPECT_NE(response.find("HTTP/1.1 405"), std::string::npos);
}

TEST_F(ObsScrapeTest, QueryStringsAreIgnoredInRouting) {
  const std::string response =
      http_request(server_->port(), "GET /healthz?verbose=1");
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
}

TEST_F(ObsScrapeTest, RequestsAreCounted) {
  const auto count = [] {
    const auto snapshot = obs::MetricsRegistry::global().snapshot();
    const auto* c = snapshot.find_counter("appclass_scrape_requests_total",
                                          {{"path", "/healthz"}});
    return c ? c->value : std::uint64_t{0};
  };
  const std::uint64_t before = count();
  (void)http_request(server_->port(), "GET /healthz");
  (void)http_request(server_->port(), "GET /healthz");
  EXPECT_EQ(count(), before + 2);
}

TEST(ObsScrapeLifecycle, StopIsIdempotentAndPortIsReusable) {
  obs::ScrapeServer first;
  ASSERT_TRUE(first.start());
  const std::uint16_t port = first.port();
  first.stop();
  first.stop();  // idempotent
  EXPECT_FALSE(first.running());

  // SO_REUSEADDR: a new server can bind the just-released port.
  obs::ScrapeServer second({.bind_address = "127.0.0.1", .port = port});
  EXPECT_TRUE(second.start());
  second.stop();
}

}  // namespace
}  // namespace appclass
