// Scrape endpoint: route behaviour, Prometheus payload, request
// accounting, registered JSON routes, health-check verdicts, and
// concurrent-request safety, exercised over real loopback sockets.
#include "obs/scrape.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "obs/health.hpp"
#include "obs/metrics.hpp"
#include "obs/recorder.hpp"
#include "obs/trace.hpp"

namespace appclass {
namespace {

/// Blocking one-shot HTTP client: sends `request_line` + empty header
/// block to 127.0.0.1:port and returns the whole response.
std::string http_request(std::uint16_t port,
                         const std::string& request_line) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return {};
  }
  const std::string request =
      request_line + " HTTP/1.1\r\nHost: localhost\r\n\r\n";
  ::send(fd, request.data(), request.size(), 0);
  std::string response;
  char buffer[4096];
  ssize_t n = 0;
  while ((n = ::recv(fd, buffer, sizeof buffer, 0)) > 0)
    response.append(buffer, static_cast<std::size_t>(n));
  ::close(fd);
  return response;
}

class ObsScrapeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    server_ = std::make_unique<obs::ScrapeServer>();  // port 0: ephemeral
    ASSERT_TRUE(server_->start());
    ASSERT_NE(server_->port(), 0);
  }

  void TearDown() override { server_->stop(); }

  std::unique_ptr<obs::ScrapeServer> server_;
};

TEST_F(ObsScrapeTest, HealthzRespondsOk) {
  const std::string response =
      http_request(server_->port(), "GET /healthz");
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(response.find("ok"), std::string::npos);
}

TEST_F(ObsScrapeTest, MetricsServesPrometheusText) {
  obs::MetricsRegistry::global()
      .counter("appclass_scrape_test_probe_total")
      .inc();
  const std::string response =
      http_request(server_->port(), "GET /metrics");
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(response.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(response.find("# TYPE"), std::string::npos);
  EXPECT_NE(response.find("appclass_scrape_test_probe_total"),
            std::string::npos);
}

TEST_F(ObsScrapeTest, TracesRecentServesChromeJson) {
  obs::TraceRecorder::global().clear();
  obs::set_tracing_enabled(true);
  { obs::TraceSpan span("scraped_span"); }
  obs::set_tracing_enabled(false);

  const std::string response =
      http_request(server_->port(), "GET /traces/recent");
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(response.find("application/json"), std::string::npos);
  EXPECT_NE(response.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(response.find("scraped_span"), std::string::npos);
}

TEST_F(ObsScrapeTest, UnknownPathIs404) {
  const std::string response =
      http_request(server_->port(), "GET /nope");
  EXPECT_NE(response.find("HTTP/1.1 404"), std::string::npos);
}

TEST_F(ObsScrapeTest, NonGetIs405) {
  const std::string response =
      http_request(server_->port(), "POST /metrics");
  EXPECT_NE(response.find("HTTP/1.1 405"), std::string::npos);
}

TEST_F(ObsScrapeTest, QueryStringsAreIgnoredInRouting) {
  const std::string response =
      http_request(server_->port(), "GET /healthz?verbose=1");
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
}

TEST_F(ObsScrapeTest, RequestsAreCounted) {
  const auto count = [] {
    const auto snapshot = obs::MetricsRegistry::global().snapshot();
    const auto* c = snapshot.find_counter("appclass_scrape_requests_total",
                                          {{"path", "/healthz"}});
    return c ? c->value : std::uint64_t{0};
  };
  const std::uint64_t before = count();
  (void)http_request(server_->port(), "GET /healthz");
  (void)http_request(server_->port(), "GET /healthz");
  EXPECT_EQ(count(), before + 2);
}

TEST(ObsScrapeRoutes, RegisteredRouteServesItsHandler) {
  obs::ScrapeServer server;
  server.add_route("/classes", "application/json",
                   [] { return std::string("{\"classes\":[]}"); });
  ASSERT_TRUE(server.start());
  const std::string response = http_request(server.port(), "GET /classes");
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(response.find("application/json"), std::string::npos);
  EXPECT_NE(response.find("{\"classes\":[]}"), std::string::npos);
  server.stop();
}

TEST(ObsScrapeRoutes, BuiltInsCannotBeShadowed) {
  obs::ScrapeServer server;
  server.add_route("/metrics", "text/plain", [] { return std::string("x"); });
  ASSERT_TRUE(server.start());
  const std::string response = http_request(server.port(), "GET /metrics");
  // Still the Prometheus exposition, not the would-be override.
  EXPECT_NE(response.find("text/plain; version=0.0.4"), std::string::npos);
  server.stop();
}

TEST(ObsScrapeRoutes, HealthCheckDrivesHealthzStatus) {
  obs::ScrapeServer server;
  std::atomic<bool> healthy{true};
  server.set_health_check([&healthy] {
    return healthy.load()
               ? obs::HealthVerdict{true, "{\"status\":\"ok\"}"}
               : obs::HealthVerdict{
                     false,
                     "{\"status\":\"degraded\",\"degraded_nodes\":1}"};
  });
  ASSERT_TRUE(server.start());

  std::string response = http_request(server.port(), "GET /healthz");
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(response.find("\"status\":\"ok\""), std::string::npos);

  healthy.store(false);
  response = http_request(server.port(), "GET /healthz");
  EXPECT_NE(response.find("HTTP/1.1 503 Service Unavailable"),
            std::string::npos);
  EXPECT_NE(response.find("\"status\":\"degraded\""), std::string::npos);
  EXPECT_NE(response.find("application/json"), std::string::npos);
  server.stop();
}

TEST(ObsScrapeRoutes, ConcurrentRequestsDuringRecordingStayConsistent) {
  // N client threads hammer /metrics, /drift, and /healthz while another
  // thread records into the ModelHealth backing the routes — the
  // scrape-server equivalent of scraping mid-drain.
  obs::ModelHealthOptions options;
  options.class_names = {"idle", "busy"};
  obs::ModelHealth health(options);

  obs::ScrapeServer server;
  server.add_route("/drift", "application/json",
                   [&health] { return health.drift_json(); });
  server.set_health_check([&health] {
    const obs::ModelHealth::Status status = health.status();
    return obs::HealthVerdict{status.healthy, status.reason_json};
  });
  ASSERT_TRUE(server.start());

  std::atomic<bool> stop{false};
  std::thread recorder([&] {
    std::size_t i = 0;
    while (!stop.load()) {
      obs::HealthSample sample;
      sample.node_ip = "10.0.0.1";
      sample.class_index = i++ % 2;
      sample.confidence = 0.9;
      const double projected[2] = {0.1, -0.2};
      sample.projected = projected;
      health.record(sample);
    }
  });

  constexpr int kThreads = 4;
  constexpr int kRequestsEach = 20;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      const char* paths[] = {"GET /metrics", "GET /drift", "GET /healthz"};
      for (int i = 0; i < kRequestsEach; ++i) {
        const std::string response =
            http_request(server.port(), paths[(t + i) % 3]);
        if (response.find("HTTP/1.1 200 OK") == std::string::npos)
          failures.fetch_add(1);
      }
    });
  }
  for (auto& client : clients) client.join();
  stop.store(true);
  recorder.join();
  server.stop();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(health.samples(), 0u);
}

TEST(ObsScrapeLifecycle, StopIsIdempotentAndPortIsReusable) {
  obs::ScrapeServer first;
  ASSERT_TRUE(first.start());
  const std::uint16_t port = first.port();
  first.stop();
  first.stop();  // idempotent
  EXPECT_FALSE(first.running());

  // SO_REUSEADDR: a new server can bind the just-released port.
  obs::ScrapeServer second({.bind_address = "127.0.0.1", .port = port});
  EXPECT_TRUE(second.start());
  second.stop();
}

TEST(ObsScrapeHardening, OversizedRequestIsRefusedWith431) {
  obs::ScrapeServer server({.max_request_bytes = 512});
  ASSERT_TRUE(server.start());
  // Header stream that never completes: longer than the cap with no
  // terminating CRLFCRLF until far past it.
  std::string huge_header = "GET /metrics HTTP/1.1\r\nX-Padding: ";
  huge_header.append(2048, 'x');
  const std::string response = http_request(server.port(), huge_header);
  EXPECT_NE(response.find("431"), std::string::npos) << response;
  server.stop();

  // A normal-size request against the same cap still succeeds.
  obs::ScrapeServer ok({.max_request_bytes = 512});
  ASSERT_TRUE(ok.start());
  const std::string healthz = http_request(ok.port(), "GET /healthz");
  EXPECT_NE(healthz.find("200 OK"), std::string::npos);
  ok.stop();
}

TEST(ObsScrapeHardening, TraceResponseIsByteCappedWithVisibleDrop) {
  obs::TraceRecorder::global().clear();
  obs::set_tracing_enabled(true);
  for (int i = 0; i < 200; ++i) {
    obs::TraceSpan span("cap_test_span_with_a_reasonably_long_name");
  }
  obs::set_tracing_enabled(false);

  obs::ScrapeServer server({.max_trace_response_bytes = 1024});
  ASSERT_TRUE(server.start());
  const std::string response =
      http_request(server.port(), "GET /traces/recent");
  server.stop();

  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  // 200 spans cannot fit 1KiB: the body stays under the cap and the
  // truncation is visible rather than silent.
  const std::size_t body = response.find("\r\n\r\n");
  ASSERT_NE(body, std::string::npos);
  EXPECT_LE(response.size() - (body + 4), 1024u);
  EXPECT_NE(response.find("\"droppedEvents\":"), std::string::npos);
}

TEST(ObsScrapeHardening, RapidTraceDumpsAreRateLimitedWith429) {
  const auto throttled = [] {
    const auto snapshot = obs::MetricsRegistry::global().snapshot();
    const auto* c =
        snapshot.find_counter("appclass_scrape_trace_throttled_total");
    return c ? c->value : std::uint64_t{0};
  };
  obs::ScrapeServer server({.trace_dump_min_interval_ms = 60000});
  ASSERT_TRUE(server.start());

  const std::uint64_t before = throttled();
  const std::string first =
      http_request(server.port(), "GET /traces/recent");
  EXPECT_NE(first.find("HTTP/1.1 200 OK"), std::string::npos);
  // Inside the min-interval window: refused, so a scrape loop pointed
  // at the trace route cannot stall recording.
  const std::string second =
      http_request(server.port(), "GET /traces/recent");
  EXPECT_NE(second.find("HTTP/1.1 429"), std::string::npos) << second;
  EXPECT_EQ(throttled(), before + 1);
  // Other routes are unaffected by the trace throttle.
  const std::string metrics = http_request(server.port(), "GET /metrics");
  EXPECT_NE(metrics.find("HTTP/1.1 200 OK"), std::string::npos);
  server.stop();
}

TEST(ObsScrapeHardening, BindRetryClaimsPortReleasedDuringBackoff) {
  obs::ScrapeServer holder;
  ASSERT_TRUE(holder.start());
  const std::uint16_t port = holder.port();

  // Without retries the occupied port is an immediate failure.
  obs::ScrapeServer impatient({.bind_address = "127.0.0.1", .port = port});
  EXPECT_FALSE(impatient.start());

  // With retries, the port freeing up mid-backoff lets start() succeed —
  // the restarted-worker-reclaims-port scenario.
  std::thread releaser([&holder] {
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    holder.stop();
  });
  obs::ScrapeServer patient({.bind_address = "127.0.0.1",
                             .port = port,
                             .bind_retries = 8,
                             .bind_retry_initial_ms = 25});
  EXPECT_TRUE(patient.start());
  releaser.join();
  patient.stop();
}

}  // namespace
}  // namespace appclass
