#include <gtest/gtest.h>

#include "core_test_util.hpp"

namespace appclass::core {
namespace {

ClassificationPipeline novelty_pipeline(double threshold) {
  PipelineOptions options;
  options.novelty_threshold = threshold;
  ClassificationPipeline pipeline(options);
  pipeline.train(testing::synthetic_training());
  return pipeline;
}

/// A behaviour unlike any trained class: simultaneous heavy everything.
metrics::DataPool alien_pool(std::size_t count, std::uint64_t seed) {
  linalg::Rng rng(seed);
  metrics::DataPool pool("10.0.0.1");
  for (std::size_t i = 0; i < count; ++i) {
    metrics::Snapshot s;
    s.time = static_cast<metrics::SimTime>(5 * i);
    s.node_ip = "10.0.0.1";
    s.set(metrics::MetricId::kCpuUser, rng.uniform(80.0, 95.0));
    s.set(metrics::MetricId::kCpuSystem, rng.uniform(40.0, 60.0));
    s.set(metrics::MetricId::kBytesOut, rng.uniform(5.0e7, 8.0e7));
    s.set(metrics::MetricId::kBytesIn, rng.uniform(5.0e7, 8.0e7));
    s.set(metrics::MetricId::kIoBi, rng.uniform(2.0e4, 3.0e4));
    s.set(metrics::MetricId::kIoBo, rng.uniform(2.0e4, 3.0e4));
    s.set(metrics::MetricId::kSwapIn, rng.uniform(8.0e3, 1.2e4));
    s.set(metrics::MetricId::kSwapOut, rng.uniform(8.0e3, 1.2e4));
    pool.add(s);
  }
  return pool;
}

TEST(Novelty, DisabledByDefault) {
  ClassificationPipeline pipeline;
  pipeline.train(testing::synthetic_training());
  const auto result =
      pipeline.classify(testing::synthetic_pool(ApplicationClass::kIo, 10, 1));
  EXPECT_TRUE(result.novelty.empty());
  EXPECT_DOUBLE_EQ(result.novel_fraction(), 0.0);
}

TEST(Novelty, KnownBehavioursScoreLow) {
  const auto pipeline = novelty_pipeline(3.0);
  for (std::size_t c = 0; c < kClassCount; ++c) {
    const auto result = pipeline.classify(
        testing::synthetic_pool(class_from_index(c), 25, 50 + c));
    EXPECT_LT(result.novel_fraction(), 0.1)
        << to_string(class_from_index(c));
  }
}

TEST(Novelty, AlienBehaviourFlagsMostSnapshots) {
  const auto pipeline = novelty_pipeline(3.0);
  const auto result = pipeline.classify(alien_pool(30, 2));
  EXPECT_GT(result.novel_fraction(), 0.9);
  ASSERT_EQ(result.novelty.size(), 30u);
  for (const double d : result.novelty) EXPECT_GT(d, 0.0);
}

TEST(Novelty, ThresholdControlsSensitivity) {
  const auto strict = novelty_pipeline(0.5);
  const auto lax = novelty_pipeline(1.0e6);
  const auto pool = alien_pool(20, 3);
  EXPECT_GT(strict.classify(pool).novel_fraction(),
            lax.classify(pool).novel_fraction());
  EXPECT_DOUBLE_EQ(lax.classify(pool).novel_fraction(), 0.0);
}

TEST(Novelty, NearestDistanceIsZeroOnTrainingPoints) {
  const auto pipeline = novelty_pipeline(3.0);
  const auto& knn = pipeline.knn();
  EXPECT_NEAR(knn.query(knn.training_points().row(0),
                        QueryOptions{.novelty = true})
                  .novelty[0],
              0.0, 1e-12);
}

TEST(Novelty, DistanceIsPositiveOffTheTrainingSet) {
  const auto pipeline = novelty_pipeline(3.0);
  const std::vector<double> far = {100.0, 100.0};
  EXPECT_GT(
      pipeline.knn().query(far, QueryOptions{.novelty = true}).novelty[0],
      50.0);
}

}  // namespace
}  // namespace appclass::core
