#include "linalg/eigen.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "linalg/random.hpp"

namespace appclass::linalg {
namespace {

Matrix random_symmetric(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i; j < n; ++j) {
      const double v = rng.normal(0.0, 2.0);
      a(i, j) = v;
      a(j, i) = v;
    }
  return a;
}

TEST(Eigen, DiagonalMatrixEigenvaluesAreDiagonal) {
  const Matrix a{{3, 0, 0}, {0, 1, 0}, {0, 0, 2}};
  const auto eig = symmetric_eigen(a);
  ASSERT_EQ(eig.eigenvalues.size(), 3u);
  EXPECT_NEAR(eig.eigenvalues[0], 3.0, 1e-12);
  EXPECT_NEAR(eig.eigenvalues[1], 2.0, 1e-12);
  EXPECT_NEAR(eig.eigenvalues[2], 1.0, 1e-12);
}

TEST(Eigen, Known2x2) {
  // [[2,1],[1,2]] has eigenvalues 3 and 1.
  const Matrix a{{2, 1}, {1, 2}};
  const auto eig = symmetric_eigen(a);
  EXPECT_NEAR(eig.eigenvalues[0], 3.0, 1e-12);
  EXPECT_NEAR(eig.eigenvalues[1], 1.0, 1e-12);
  // Eigenvector of 3 is (1,1)/sqrt(2) up to sign convention.
  const double inv_sqrt2 = 1.0 / std::sqrt(2.0);
  EXPECT_NEAR(std::abs(eig.eigenvectors(0, 0)), inv_sqrt2, 1e-12);
  EXPECT_NEAR(std::abs(eig.eigenvectors(1, 0)), inv_sqrt2, 1e-12);
}

TEST(Eigen, IdentityYieldsAllOnes) {
  const auto eig = symmetric_eigen(Matrix::identity(5));
  for (double v : eig.eigenvalues) EXPECT_NEAR(v, 1.0, 1e-12);
}

TEST(Eigen, EigenvaluesSortedDescending) {
  const auto eig = symmetric_eigen(random_symmetric(7, 11));
  for (std::size_t i = 0; i + 1 < eig.eigenvalues.size(); ++i)
    EXPECT_GE(eig.eigenvalues[i], eig.eigenvalues[i + 1]);
}

TEST(Eigen, TraceEqualsEigenvalueSum) {
  const Matrix a = random_symmetric(6, 3);
  const auto eig = symmetric_eigen(a);
  double trace = 0.0, sum = 0.0;
  for (std::size_t i = 0; i < 6; ++i) trace += a(i, i);
  for (double v : eig.eigenvalues) sum += v;
  EXPECT_NEAR(trace, sum, 1e-9);
}

TEST(Eigen, SignConventionLargestComponentPositive) {
  const auto eig = symmetric_eigen(random_symmetric(5, 17));
  for (std::size_t j = 0; j < 5; ++j) {
    double amax = 0.0;
    double chosen = 0.0;
    for (std::size_t i = 0; i < 5; ++i)
      if (std::abs(eig.eigenvectors(i, j)) > amax) {
        amax = std::abs(eig.eigenvectors(i, j));
        chosen = eig.eigenvectors(i, j);
      }
    EXPECT_GT(chosen, 0.0);
  }
}

TEST(Eigen, OffDiagonalNormOfDiagonalIsZero) {
  EXPECT_DOUBLE_EQ(off_diagonal_norm(Matrix::identity(4)), 0.0);
  const Matrix a{{1, 2}, {2, 1}};
  EXPECT_NEAR(off_diagonal_norm(a), std::sqrt(8.0), 1e-12);
}

TEST(Eigen, AbsorbsRoundoffAsymmetry) {
  Matrix a{{2, 1}, {1, 2}};
  a(0, 1) += 1e-14;  // slightly non-symmetric input
  const auto eig = symmetric_eigen(a);
  EXPECT_NEAR(eig.eigenvalues[0], 3.0, 1e-9);
}

/// Property sweep across sizes: orthonormality and reconstruction.
class EigenProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(EigenProperty, EigenvectorsOrthonormal) {
  const std::size_t n = GetParam();
  const auto eig = symmetric_eigen(random_symmetric(n, 100 + n));
  const Matrix vtv =
      eig.eigenvectors.transposed() * eig.eigenvectors;
  EXPECT_LT(vtv.max_abs_diff(Matrix::identity(n)), 1e-9);
}

TEST_P(EigenProperty, ReconstructsInput) {
  const std::size_t n = GetParam();
  const Matrix a = random_symmetric(n, 200 + n);
  const auto eig = symmetric_eigen(a);
  Matrix lambda(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) lambda(i, i) = eig.eigenvalues[i];
  const Matrix restored =
      eig.eigenvectors * lambda * eig.eigenvectors.transposed();
  EXPECT_LT(restored.max_abs_diff(a), 1e-8);
}

TEST_P(EigenProperty, EigenpairsSatisfyDefinition) {
  const std::size_t n = GetParam();
  const Matrix a = random_symmetric(n, 300 + n);
  const auto eig = symmetric_eigen(a);
  for (std::size_t j = 0; j < n; ++j) {
    const std::vector<double> v = eig.eigenvectors.col(j);
    const std::vector<double> av = a.multiply(v);
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_NEAR(av[i], eig.eigenvalues[j] * v[i], 1e-8);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, EigenProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 8u, 12u, 20u));

}  // namespace
}  // namespace appclass::linalg
