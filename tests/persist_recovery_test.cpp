// Crash-recovery acceptance: a child process ingests snapshots while
// write-ahead logging them, is SIGKILLed at an arbitrary offset, and the
// parent recovers from disk into state bit-identical to a process that
// never died — at several distinct kill offsets, with and without a
// mid-stream checkpoint, under each fsync policy's documented loss bound.
#include "persist/recovery.hpp"

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <filesystem>
#include <stdexcept>
#include <string>
#include <vector>

#include "core_test_util.hpp"
#include "persist/checkpoint.hpp"
#include "persist/wal.hpp"

namespace appclass::persist {
namespace {

/// Small knobs so window/debounce state is non-trivial by snapshot ~10.
constexpr core::OnlineOptions kOptions = {.sampling_interval_s = 1,
                                          .window = 6,
                                          .stability = 2,
                                          .min_coverage = 0.5};

/// Deterministic cross-process stream: both the child (pre-kill) and the
/// parent (reference run) must construct the identical snapshots.
std::vector<metrics::Snapshot> make_stream(std::size_t n) {
  linalg::Rng rng(99);
  std::vector<metrics::Snapshot> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto s = core::testing::synthetic_snapshot(
        core::class_from_index((i / 7) % core::kClassCount), rng,
        static_cast<metrics::SimTime>(i));
    s.node_ip = i % 3 == 0 ? "10.0.0.2" : "10.0.0.1";
    out.push_back(std::move(s));
  }
  return out;
}

/// Canonical byte image of a classifier's full online state.
std::string state_image(const core::OnlineClassifier& online) {
  CheckpointData data;
  data.options = online.options();
  data.online = online.export_state();
  return encode_checkpoint(data);
}

class RecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    pipeline_.train(core::testing::synthetic_training());
    char tmpl[] = "/tmp/appclass_recover_XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    dir_ = tmpl;
  }

  void TearDown() override { std::filesystem::remove_all(dir_); }

  void ingest(core::OnlineClassifier& online,
              const metrics::Snapshot& snapshot) {
    online.ingest(snapshot, pipeline_.classify(snapshot));
  }

  /// Forks a child that WAL-appends + ingests exactly `kill_at`
  /// snapshots (checkpointing after `checkpoint_at` when non-zero), then
  /// SIGKILLs itself mid-flight. Returns once the kill is confirmed.
  void run_child_until_kill(std::size_t kill_at, std::size_t checkpoint_at,
                            WalOptions wal_options) {
    const auto snapshots = make_stream(kill_at);
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      // Child: no gtest assertions, no return — only SIGKILL.
      core::OnlineClassifier online(pipeline_, kOptions);
      WalWriter wal(dir_ + "/wal", wal_options, 0);
      for (std::size_t i = 0; i < kill_at; ++i) {
        wal.append(snapshots[i]);
        online.ingest(snapshots[i], pipeline_.classify(snapshots[i]));
        if (checkpoint_at != 0 && i + 1 == checkpoint_at) {
          wal.sync();
          CheckpointData data;
          data.wal_next = i + 1;
          data.options = online.options();
          data.online = online.export_state();
          write_checkpoint(dir_ + "/checkpoints", data);
        }
      }
      ::raise(SIGKILL);
      ::_exit(127);  // unreachable
    }
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFSIGNALED(status));
    ASSERT_EQ(WTERMSIG(status), SIGKILL);
  }

  /// The invariant under fsync=always: recovered state is bit-identical
  /// to an uninterrupted run over the same prefix.
  void expect_bit_identical_recovery(std::size_t kill_at,
                                     std::size_t checkpoint_at) {
    run_child_until_kill(kill_at, checkpoint_at,
                         {.fsync = FsyncPolicy::kAlways});

    core::OnlineClassifier recovered(pipeline_, kOptions);
    const RecoveryReport report = recover(dir_, pipeline_, recovered);
    EXPECT_EQ(report.checkpoint_loaded, checkpoint_at != 0);
    EXPECT_EQ(report.wal_next_seq, kill_at);

    core::OnlineClassifier reference(pipeline_, kOptions);
    const auto snapshots = make_stream(kill_at);
    for (const auto& s : snapshots) ingest(reference, s);
    EXPECT_EQ(state_image(recovered), state_image(reference));

    // And the recovered classifier keeps classifying identically.
    const auto tail = make_stream(kill_at + 10);
    for (std::size_t i = kill_at; i < tail.size(); ++i) {
      ingest(recovered, tail[i]);
      ingest(reference, tail[i]);
    }
    EXPECT_EQ(state_image(recovered), state_image(reference));
  }

  core::ClassificationPipeline pipeline_;
  std::string dir_;
};

TEST_F(RecoveryTest, SigkillAtOffset7RecoversBitIdentical) {
  expect_bit_identical_recovery(7, 0);
}

TEST_F(RecoveryTest, SigkillAtOffset23RecoversBitIdentical) {
  expect_bit_identical_recovery(23, 0);
}

TEST_F(RecoveryTest, SigkillAtOffset41RecoversBitIdentical) {
  expect_bit_identical_recovery(41, 0);
}

TEST_F(RecoveryTest, CheckpointPlusWalTailRecoversBitIdentical) {
  // Mid-stream checkpoint: recovery must load it and replay only the
  // tail, landing on the same bytes as the full uninterrupted run.
  expect_bit_identical_recovery(31, 16);
}

TEST_F(RecoveryTest, IntervalFsyncLossIsBoundedBySyncInterval) {
  constexpr std::size_t kKillAt = 23;
  constexpr std::size_t kSyncEvery = 5;
  run_child_until_kill(
      kKillAt, 0,
      {.fsync = FsyncPolicy::kInterval, .sync_every = kSyncEvery});

  core::OnlineClassifier recovered(pipeline_, kOptions);
  const RecoveryReport report = recover(dir_, pipeline_, recovered);
  // At most sync_every records vanish with the user-space buffer; the
  // durable prefix replays completely.
  EXPECT_GE(report.wal_next_seq, kKillAt - kSyncEvery);
  EXPECT_LE(report.wal_next_seq, kKillAt);

  core::OnlineClassifier reference(pipeline_, kOptions);
  const auto snapshots = make_stream(kKillAt);
  for (std::size_t i = 0; i < report.wal_next_seq; ++i)
    ingest(reference, snapshots[i]);
  EXPECT_EQ(state_image(recovered), state_image(reference));
}

TEST_F(RecoveryTest, ColdStartIsClean) {
  core::OnlineClassifier online(pipeline_, kOptions);
  const RecoveryReport report = recover(dir_, pipeline_, online);
  EXPECT_FALSE(report.checkpoint_loaded);
  EXPECT_EQ(report.replayed, 0u);
  EXPECT_EQ(report.wal_next_seq, 0u);
}

TEST_F(RecoveryTest, RefusesCheckpointWithMismatchedOptions) {
  {
    core::OnlineClassifier online(pipeline_, kOptions);
    for (const auto& s : make_stream(8)) ingest(online, s);
    CheckpointData data;
    data.wal_next = 8;
    data.options = kOptions;
    data.online = online.export_state();
    write_checkpoint(dir_ + "/checkpoints", data);
  }
  core::OnlineOptions other = kOptions;
  other.window = kOptions.window + 1;
  core::OnlineClassifier online(pipeline_, other);
  EXPECT_THROW(recover(dir_, pipeline_, online), std::runtime_error);
}

TEST_F(RecoveryTest, SecondCrashAfterRecoveryStillRecovers) {
  // Crash, recover, serve a bit more (new WAL writer resumes numbering),
  // crash again, recover again: numbering and state stay consistent.
  run_child_until_kill(13, 0, {.fsync = FsyncPolicy::kAlways});

  core::OnlineClassifier mid(pipeline_, kOptions);
  const RecoveryReport first = recover(dir_, pipeline_, mid);
  ASSERT_EQ(first.wal_next_seq, 13u);

  const auto tail = make_stream(20);
  {
    WalWriter wal(dir_ + "/wal", {.fsync = FsyncPolicy::kAlways},
                  first.wal_next_seq);
    for (std::size_t i = 13; i < 20; ++i) {
      wal.append(tail[i]);
      ingest(mid, tail[i]);
    }
  }

  core::OnlineClassifier recovered(pipeline_, kOptions);
  const RecoveryReport second = recover(dir_, pipeline_, recovered);
  EXPECT_EQ(second.wal_next_seq, 20u);

  core::OnlineClassifier reference(pipeline_, kOptions);
  for (const auto& s : tail) ingest(reference, s);
  EXPECT_EQ(state_image(recovered), state_image(reference));
}

}  // namespace
}  // namespace appclass::persist
