// The blocked SoA kernel must agree bit-for-bit with the seed's scalar
// query path (preserved as engine::reference_top_k): same distances,
// same neighbour order, same tie-breaks, for every size around the tile
// boundary and under both metrics — otherwise threaded classification
// could drift from the serial baseline.
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "engine/knn_kernel.hpp"
#include "linalg/matrix.hpp"

namespace appclass {
namespace {

using engine::BlockedKnnIndex;
using engine::DistanceMetric;

linalg::Matrix random_points(std::size_t n, std::size_t dims,
                             std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> dist(-5.0, 5.0);
  linalg::Matrix m(n, dims);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < dims; ++c) m(r, c) = dist(rng);
  return m;
}

std::vector<core::ApplicationClass> cycling_labels(std::size_t n) {
  std::vector<core::ApplicationClass> labels(n);
  for (std::size_t i = 0; i < n; ++i)
    labels[i] = static_cast<core::ApplicationClass>(i % 5);
  return labels;
}

void expect_matches_reference(std::size_t n, std::size_t dims, std::size_t k,
                              DistanceMetric metric, std::uint32_t seed) {
  const linalg::Matrix points = random_points(n, dims, seed);
  BlockedKnnIndex index;
  index.build(points, cycling_labels(n), k, metric);
  BlockedKnnIndex::Scratch scratch;

  const linalg::Matrix queries = random_points(64, dims, seed + 1);
  for (std::size_t r = 0; r < queries.rows(); ++r) {
    const auto q = queries.row(r);
    const auto hits = index.top_k(q, scratch);
    const auto expected = engine::reference_top_k(points, q, k, metric);
    ASSERT_EQ(hits.size(), expected.size());
    for (std::size_t i = 0; i < hits.size(); ++i) {
      // Bit-identical, not approximately equal: both paths must sum the
      // per-feature terms in the same order.
      EXPECT_EQ(hits[i].distance, expected[i].distance)
          << "n=" << n << " k=" << k << " query=" << r << " rank=" << i;
      EXPECT_EQ(hits[i].index, expected[i].index)
          << "n=" << n << " k=" << k << " query=" << r << " rank=" << i;
    }
    EXPECT_EQ(index.nearest_distance(q, scratch), expected[0].distance);
  }
}

TEST(EngineKernel, MatchesReferenceAcrossTileBoundaries) {
  const std::size_t tile = BlockedKnnIndex::kTile;
  for (const std::size_t n :
       {std::size_t{1}, std::size_t{2}, std::size_t{3}, std::size_t{7},
        tile - 1, tile, tile + 1, 3 * tile, 3 * tile + 5}) {
    expect_matches_reference(n, 2, 3, DistanceMetric::kEuclidean,
                             static_cast<std::uint32_t>(n));
  }
}

TEST(EngineKernel, MatchesReferenceUnderManhattan) {
  const std::size_t tile = BlockedKnnIndex::kTile;
  for (const std::size_t n : {std::size_t{5}, tile, 2 * tile + 17}) {
    expect_matches_reference(n, 8, 3, DistanceMetric::kManhattan,
                             static_cast<std::uint32_t>(100 + n));
  }
}

TEST(EngineKernel, MatchesReferenceForVariousK) {
  for (const std::size_t k : {std::size_t{1}, std::size_t{5}, std::size_t{9},
                              std::size_t{31}}) {
    expect_matches_reference(500, 4, k, DistanceMetric::kEuclidean,
                             static_cast<std::uint32_t>(1000 + k));
  }
}

TEST(EngineKernel, KLargerThanPointCountIsClamped) {
  const linalg::Matrix points = random_points(4, 2, 7);
  BlockedKnnIndex index;
  index.build(points, cycling_labels(4), 9, DistanceMetric::kEuclidean);
  BlockedKnnIndex::Scratch scratch;
  const auto hits = index.top_k(points.row(0), scratch);
  EXPECT_EQ(hits.size(), 4u);
}

TEST(EngineKernel, SelfDistanceIsExactlyZero) {
  // The kernel accumulates squared differences directly (no norm-trick
  // expansion), so a training point queried against itself must come back
  // at distance exactly 0.0 — the novelty tests depend on this.
  const linalg::Matrix points = random_points(700, 2, 42);
  BlockedKnnIndex index;
  index.build(points, cycling_labels(700), 3, DistanceMetric::kEuclidean);
  BlockedKnnIndex::Scratch scratch;
  for (std::size_t r = 0; r < points.rows(); r += 13) {
    const auto hits = index.top_k(points.row(r), scratch);
    EXPECT_EQ(hits[0].distance, 0.0);
    EXPECT_EQ(hits[0].index, r);
  }
}

TEST(EngineKernel, PruningNeverChangesResults) {
  // Two tight clusters very far apart: querying inside one cluster makes
  // the other cluster's tiles prunable via the norm bounds. The pruned
  // scan must still return exactly what the reference scan returns.
  std::mt19937 rng(99);
  std::normal_distribution<double> noise(0.0, 0.01);
  const std::size_t half = 2 * BlockedKnnIndex::kTile;
  linalg::Matrix points(2 * half, 2);
  for (std::size_t r = 0; r < half; ++r) {
    points(r, 0) = noise(rng);
    points(r, 1) = noise(rng);
  }
  for (std::size_t r = half; r < 2 * half; ++r) {
    points(r, 0) = 1000.0 + noise(rng);
    points(r, 1) = 1000.0 + noise(rng);
  }
  BlockedKnnIndex index;
  index.build(points, cycling_labels(2 * half), 3,
              DistanceMetric::kEuclidean);
  BlockedKnnIndex::Scratch scratch;
  for (std::size_t r = 0; r < 2 * half; r += 37) {
    const auto hits = index.top_k(points.row(r), scratch);
    const auto expected =
        engine::reference_top_k(points, points.row(r), 3,
                                DistanceMetric::kEuclidean);
    for (std::size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].distance, expected[i].distance);
      EXPECT_EQ(hits[i].index, expected[i].index);
    }
  }
}

TEST(EngineKernel, TieBreaksTowardLowerIndex) {
  // Four training points equidistant from the query; the reported
  // neighbours must be the lowest indices, like partial_sort over
  // (distance, index) pairs.
  linalg::Matrix points{{1.0, 0.0}, {0.0, 1.0}, {-1.0, 0.0}, {0.0, -1.0}};
  BlockedKnnIndex index;
  index.build(points, cycling_labels(4), 3, DistanceMetric::kEuclidean);
  BlockedKnnIndex::Scratch scratch;
  const auto hits = index.top_k(std::vector<double>{0.0, 0.0}, scratch);
  ASSERT_EQ(hits.size(), 3u);
  EXPECT_EQ(hits[0].index, 0u);
  EXPECT_EQ(hits[1].index, 1u);
  EXPECT_EQ(hits[2].index, 2u);
}

TEST(EngineKernel, QueryBlockStridedPathMatchesContiguousPath) {
  // The streaming drain lays query points feature-major in a QueryBlock
  // (stride = block capacity); the strided loads must reproduce the
  // contiguous span path bit-for-bit — only addresses change, never the
  // order the per-feature terms are accumulated in.
  for (const auto metric :
       {DistanceMetric::kEuclidean, DistanceMetric::kManhattan}) {
    const std::size_t dims = 3;
    const linalg::Matrix points = random_points(700, dims, 11);
    BlockedKnnIndex index;
    index.build(points, cycling_labels(700), 3, metric);
    BlockedKnnIndex::Scratch scratch;

    const linalg::Matrix queries = random_points(40, dims, 12);
    engine::QueryBlock block;
    // Reset large then small: count < capacity forces stride > count, so
    // the strided addressing is actually exercised.
    block.reset(dims, 64);
    block.reset(dims, queries.rows());
    ASSERT_GT(block.stride(), queries.rows());
    for (std::size_t i = 0; i < queries.rows(); ++i) {
      double* point = block.point(i);
      for (std::size_t j = 0; j < dims; ++j)
        point[j * block.stride()] = queries(i, j);
    }

    for (std::size_t i = 0; i < queries.rows(); ++i) {
      const auto strided = index.top_k(block, i, scratch);
      // Copy before the second query: both calls share the scratch the
      // returned span points into.
      const std::vector<BlockedKnnIndex::Hit> strided_hits(strided.begin(),
                                                           strided.end());
      const auto contiguous = index.top_k(queries.row(i), scratch);
      ASSERT_EQ(strided_hits.size(), contiguous.size());
      for (std::size_t r = 0; r < contiguous.size(); ++r) {
        EXPECT_EQ(strided_hits[r].distance, contiguous[r].distance)
            << "query=" << i << " rank=" << r;
        EXPECT_EQ(strided_hits[r].index, contiguous[r].index)
            << "query=" << i << " rank=" << r;
      }
    }
  }
}

TEST(EngineKernel, VoteMatchesSeedSemantics) {
  BlockedKnnIndex index;
  linalg::Matrix points{{0.0, 0.0}, {1.0, 0.0}, {2.0, 0.0}};
  index.build(points,
              {core::ApplicationClass::kCpu, core::ApplicationClass::kCpu,
               core::ApplicationClass::kIo},
              3, DistanceMetric::kEuclidean);
  BlockedKnnIndex::Scratch scratch;
  const auto hits = index.top_k(std::vector<double>{0.9, 0.0}, scratch);
  const auto vote = index.vote(hits);
  EXPECT_EQ(vote.label, core::ApplicationClass::kCpu);
  EXPECT_DOUBLE_EQ(vote.share, 2.0 / 3.0);
}

}  // namespace
}  // namespace appclass
