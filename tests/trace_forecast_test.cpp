#include "trace/forecast.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "linalg/random.hpp"

namespace appclass::trace {
namespace {

TEST(Ewma, ConvergesToConstantSignal) {
  EwmaForecaster f(0.3);
  for (int i = 0; i < 100; ++i) f.observe(7.0);
  EXPECT_DOUBLE_EQ(f.forecast(), 7.0);
  EXPECT_NEAR(f.variance(), 0.0, 1e-12);
}

TEST(Ewma, TracksLevelShift) {
  EwmaForecaster f(0.3);
  for (int i = 0; i < 50; ++i) f.observe(10.0);
  for (int i = 0; i < 50; ++i) f.observe(90.0);
  EXPECT_NEAR(f.forecast(), 90.0, 1.0);
}

TEST(Ewma, VarianceReflectsNoise) {
  // The EW variance has ~1/alpha samples of memory, so a point estimate
  // is itself noisy: compare time-averaged estimates.
  linalg::Rng rng(4);
  EwmaForecaster quiet(0.2), noisy(0.2);
  double quiet_avg = 0.0, noisy_avg = 0.0;
  int averaged = 0;
  for (int i = 0; i < 4000; ++i) {
    quiet.observe(rng.normal(50.0, 1.0));
    noisy.observe(rng.normal(50.0, 10.0));
    if (i >= 1000) {
      quiet_avg += quiet.variance();
      noisy_avg += noisy.variance();
      ++averaged;
    }
  }
  quiet_avg /= averaged;
  noisy_avg /= averaged;
  EXPECT_GT(noisy_avg, 20.0 * quiet_avg);
  EXPECT_NEAR(std::sqrt(noisy_avg), 10.0, 2.0);
}

TEST(Ewma, ConservativeAddsStdDevs) {
  linalg::Rng rng(5);
  EwmaForecaster f(0.2);
  for (int i = 0; i < 2000; ++i) f.observe(rng.normal(40.0, 5.0));
  EXPECT_GT(f.conservative(2.0), f.forecast() + 5.0);
  EXPECT_NEAR(f.conservative(0.0), f.forecast(), 1e-12);
}

TEST(Ewma, AlphaOneFollowsExactly) {
  EwmaForecaster f(1.0);
  f.observe(3.0);
  f.observe(8.0);
  EXPECT_DOUBLE_EQ(f.forecast(), 8.0);
}

TEST(Holt, ExtrapolatesLinearTrend) {
  HoltForecaster f(0.5, 0.3);
  for (int i = 0; i <= 60; ++i) f.observe(10.0 + 2.0 * i);  // last = 130
  EXPECT_NEAR(f.forecast(1), 132.0, 1.0);
  EXPECT_NEAR(f.forecast(10), 150.0, 2.0);
}

TEST(Holt, BeatsEwmaOnARamp) {
  EwmaForecaster ewma(0.3);
  HoltForecaster holt(0.3, 0.2);
  double actual = 0.0;
  for (int i = 0; i <= 100; ++i) {
    actual = 3.0 * i;
    ewma.observe(actual);
    holt.observe(actual);
  }
  const double next = actual + 3.0;
  EXPECT_LT(std::abs(holt.forecast(1) - next),
            std::abs(ewma.forecast() - next));
}

TEST(Holt, FlatSignalHasZeroTrend) {
  HoltForecaster f;
  for (int i = 0; i < 100; ++i) f.observe(5.0);
  EXPECT_NEAR(f.trend(), 0.0, 1e-9);
  EXPECT_NEAR(f.forecast(20), 5.0, 1e-6);
}

TEST(Forecast, CountsTrackObservations) {
  EwmaForecaster e;
  HoltForecaster h;
  EXPECT_EQ(e.count(), 0u);
  e.observe(1.0);
  h.observe(1.0);
  h.observe(2.0);
  EXPECT_EQ(e.count(), 1u);
  EXPECT_EQ(h.count(), 2u);
}

}  // namespace
}  // namespace appclass::trace
