// Write-ahead log: append/replay round trip, segment rotation, torn-tail
// semantics, pruning, and the crash-loss bounds of each fsync policy
// (simulate_crash models SIGKILL: written bytes survive in the page
// cache, the user-space buffer vanishes).
#include "persist/wal.hpp"

#include <unistd.h>

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core_test_util.hpp"
#include "monitor/wire.hpp"

namespace appclass::persist {
namespace {

class WalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/appclass_wal_XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    dir_ = tmpl;
  }

  void TearDown() override { std::filesystem::remove_all(dir_); }

  /// Deterministic snapshot stream (same seed => same bytes).
  static std::vector<metrics::Snapshot> stream(std::size_t n) {
    linalg::Rng rng(7);
    std::vector<metrics::Snapshot> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      auto s = core::testing::synthetic_snapshot(
          core::class_from_index(i % core::kClassCount), rng,
          static_cast<metrics::SimTime>(i));
      s.node_ip = i % 2 == 0 ? "10.0.0.1" : "10.0.0.2";
      out.push_back(std::move(s));
    }
    return out;
  }

  std::string dir_;
};

TEST_F(WalTest, AppendReplayRoundTrip) {
  const auto snapshots = stream(12);
  {
    WalWriter wal(dir_);
    for (const auto& s : snapshots) wal.append(s);
    EXPECT_EQ(wal.next_seq(), 12u);
    EXPECT_EQ(wal.appended(), 12u);
  }
  std::vector<WalRecord> records;
  const WalScan scan = replay_wal(
      dir_, 0, [&](const WalRecord& r) { records.push_back(r); });
  EXPECT_FALSE(scan.truncated_tail);
  ASSERT_EQ(scan.records, 12u);
  EXPECT_EQ(scan.last_seq, 11u);
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].seq, i);
    // Wire-level bit identity: the replayed snapshot re-encodes to the
    // exact bytes the original produced.
    EXPECT_EQ(monitor::encode_packet(records[i].snapshot),
              monitor::encode_packet(snapshots[i]));
  }
}

TEST_F(WalTest, ReplayFromSeqSkipsPrefix) {
  {
    WalWriter wal(dir_);
    for (const auto& s : stream(10)) wal.append(s);
  }
  std::vector<std::uint64_t> seqs;
  replay_wal(dir_, 6, [&](const WalRecord& r) { seqs.push_back(r.seq); });
  EXPECT_EQ(seqs, (std::vector<std::uint64_t>{6, 7, 8, 9}));
}

TEST_F(WalTest, RotationSplitsSegmentsAndReplaysInOrder) {
  {
    WalWriter wal(dir_, {.max_segment_bytes = 512});
    for (const auto& s : stream(24)) wal.append(s);
  }
  EXPECT_GE(wal_segments(dir_).size(), 3u);
  std::vector<std::uint64_t> seqs;
  const WalScan scan =
      replay_wal(dir_, 0, [&](const WalRecord& r) { seqs.push_back(r.seq); });
  EXPECT_FALSE(scan.truncated_tail);
  ASSERT_EQ(seqs.size(), 24u);
  for (std::size_t i = 0; i < seqs.size(); ++i) EXPECT_EQ(seqs[i], i);
}

TEST_F(WalTest, TornTailIsReportedNotFatal) {
  {
    WalWriter wal(dir_);
    for (const auto& s : stream(6)) wal.append(s);
  }
  const auto segments = wal_segments(dir_);
  ASSERT_EQ(segments.size(), 1u);
  // Chop a few bytes off the final record: the artifact of a crash
  // mid-append.
  const auto size = std::filesystem::file_size(segments[0]);
  std::filesystem::resize_file(segments[0], size - 5);

  std::uint64_t delivered = 0;
  const WalScan scan =
      replay_wal(dir_, 0, [&](const WalRecord&) { ++delivered; });
  EXPECT_TRUE(scan.truncated_tail);
  EXPECT_EQ(delivered, 5u);
  EXPECT_EQ(scan.last_seq, 4u);
}

TEST_F(WalTest, TornRecordTerminatesOnlyItsSegment) {
  // Two segments; tear the FIRST one's tail. The second segment (written
  // by a "post-recovery process") must still replay.
  {
    WalWriter wal(dir_, {.max_segment_bytes = 400});
    for (const auto& s : stream(12)) wal.append(s);
  }
  const auto segments = wal_segments(dir_);
  ASSERT_GE(segments.size(), 2u);
  const auto size = std::filesystem::file_size(segments[0]);
  std::filesystem::resize_file(segments[0], size - 3);

  std::vector<std::uint64_t> seqs;
  const WalScan scan =
      replay_wal(dir_, 0, [&](const WalRecord& r) { seqs.push_back(r.seq); });
  EXPECT_TRUE(scan.truncated_tail);
  ASSERT_FALSE(seqs.empty());
  // Records from the later segment survived the earlier segment's tear.
  EXPECT_EQ(seqs.back(), 11u);
}

TEST_F(WalTest, AlwaysPolicySurvivesSigkillWithZeroLoss) {
  WalWriter wal(dir_, {.fsync = FsyncPolicy::kAlways});
  for (const auto& s : stream(9)) wal.append(s);
  wal.simulate_crash();
  std::uint64_t delivered = 0;
  replay_wal(dir_, 0, [&](const WalRecord&) { ++delivered; });
  EXPECT_EQ(delivered, 9u);
}

TEST_F(WalTest, IntervalPolicyBoundsLossToSyncInterval) {
  WalWriter wal(dir_, {.fsync = FsyncPolicy::kInterval, .sync_every = 4});
  for (const auto& s : stream(10)) wal.append(s);
  wal.simulate_crash();
  std::uint64_t delivered = 0;
  replay_wal(dir_, 0, [&](const WalRecord&) { ++delivered; });
  // Synced after records 4 and 8; 9 and 10 were in the lost buffer.
  EXPECT_EQ(delivered, 8u);
}

TEST_F(WalTest, NeverPolicyCanLoseEverythingBuffered) {
  WalWriter wal(dir_, {.fsync = FsyncPolicy::kNever});
  for (const auto& s : stream(10)) wal.append(s);
  wal.simulate_crash();
  std::uint64_t delivered = 0;
  replay_wal(dir_, 0, [&](const WalRecord&) { ++delivered; });
  EXPECT_EQ(delivered, 0u);
}

TEST_F(WalTest, AppendAfterCrashThrows) {
  WalWriter wal(dir_);
  wal.append(stream(1)[0]);
  wal.simulate_crash();
  EXPECT_THROW(wal.append(stream(1)[0]), std::runtime_error);
}

TEST_F(WalTest, PruneDeletesCoveredSegmentsNeverTheActiveOne) {
  WalWriter wal(dir_, {.max_segment_bytes = 400});
  for (const auto& s : stream(18)) wal.append(s);
  const auto before = wal_segments(dir_);
  ASSERT_GE(before.size(), 3u);
  // A checkpoint at the horizon covers every record; only whole segments
  // strictly below the active one may go.
  const std::size_t removed = wal.prune_through(wal.next_seq() - 1);
  const auto after = wal_segments(dir_);
  EXPECT_EQ(before.size() - removed, after.size());
  EXPECT_GE(after.size(), 1u);
  // Everything still replayable is exactly the active segment's records.
  std::vector<std::uint64_t> seqs;
  replay_wal(dir_, 0, [&](const WalRecord& r) { seqs.push_back(r.seq); });
  ASSERT_FALSE(seqs.empty());
  EXPECT_EQ(seqs.back(), 17u);
}

TEST_F(WalTest, ResumesNumberingAcrossRestart) {
  {
    WalWriter wal(dir_);
    for (const auto& s : stream(5)) wal.append(s);
  }
  {
    WalWriter wal(dir_, {}, 5);  // recovery passes last replayed + 1
    EXPECT_EQ(wal.append(stream(6)[5]), 5u);
  }
  std::vector<std::uint64_t> seqs;
  replay_wal(dir_, 0, [&](const WalRecord& r) { seqs.push_back(r.seq); });
  EXPECT_EQ(seqs, (std::vector<std::uint64_t>{0, 1, 2, 3, 4, 5}));
}

TEST_F(WalTest, MissingDirectoryIsAnEmptyScan) {
  const WalScan scan = replay_wal(dir_ + "/nope", 0, [](const WalRecord&) {});
  EXPECT_EQ(scan.records, 0u);
  EXPECT_FALSE(scan.truncated_tail);
  EXPECT_EQ(scan.segments, 0u);
}

TEST(WalPolicy, StringRoundTrip) {
  for (const auto policy : {FsyncPolicy::kAlways, FsyncPolicy::kInterval,
                            FsyncPolicy::kNever}) {
    const auto parsed = fsync_policy_from_string(to_string(policy));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, policy);
  }
  EXPECT_FALSE(fsync_policy_from_string("sometimes").has_value());
}

}  // namespace
}  // namespace appclass::persist
