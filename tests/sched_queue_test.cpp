#include "sched/queue.hpp"

#include <gtest/gtest.h>

#include <set>

namespace appclass::sched {
namespace {

using core::ApplicationClass;

std::vector<ArrivingJob> tiny_stream() {
  return {
      {"postmark", ApplicationClass::kIo, 0},
      {"ch3d", ApplicationClass::kCpu, 10},
      {"postmark", ApplicationClass::kIo, 20},
  };
}

TEST(Queue, MixedArrivalsAreSortedAndComplete) {
  const auto jobs = make_mixed_arrivals(20, 60.0, 3);
  EXPECT_EQ(jobs.size(), 20u);
  for (std::size_t i = 0; i + 1 < jobs.size(); ++i)
    EXPECT_LE(jobs[i].arrival, jobs[i + 1].arrival);
  std::set<std::string> apps;
  for (const auto& j : jobs) apps.insert(j.app);
  EXPECT_GE(apps.size(), 2u);
}

TEST(Queue, MixedArrivalsDeterministicPerSeed) {
  const auto a = make_mixed_arrivals(15, 60.0, 9);
  const auto b = make_mixed_arrivals(15, 60.0, 9);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].app, b[i].app);
    EXPECT_EQ(a[i].arrival, b[i].arrival);
  }
}

TEST(Queue, RunCompletesEveryJobAndRecordsResponses) {
  ArrivalExperimentOptions options;
  options.vm_count = 2;
  const auto outcome =
      run_arrival_experiment(tiny_stream(), round_robin_policy(), options);
  ASSERT_EQ(outcome.jobs.size(), 3u);
  for (const auto& j : outcome.jobs) {
    EXPECT_GT(j.response_seconds, 0);
    EXPECT_LT(j.vm_index, 2u);
  }
  EXPECT_GT(outcome.makespan, 0);
  EXPECT_GT(outcome.mean_response(), 0.0);
  EXPECT_GE(outcome.max_response(), outcome.mean_response());
}

TEST(Queue, ResponseIncludesQueueingDelayUnderContention) {
  // Two identical CPU jobs arriving together on ONE VM take ~2x as long
  // as a lone job.
  std::vector<ArrivingJob> jobs = {
      {"ch3d", ApplicationClass::kCpu, 0},
      {"ch3d", ApplicationClass::kCpu, 0},
  };
  ArrivalExperimentOptions options;
  options.vm_count = 1;
  const auto outcome =
      run_arrival_experiment(jobs, round_robin_policy(), options);
  for (const auto& j : outcome.jobs)
    EXPECT_GT(j.response_seconds, 700);  // ~2x the ~490 s solo time
}

TEST(Queue, RoundRobinCyclesVms) {
  std::vector<ArrivingJob> jobs;
  for (int i = 0; i < 4; ++i)
    jobs.push_back({"postmark", ApplicationClass::kIo, i});
  ArrivalExperimentOptions options;
  options.vm_count = 4;
  const auto outcome =
      run_arrival_experiment(jobs, round_robin_policy(), options);
  std::set<std::size_t> used;
  for (const auto& j : outcome.jobs) used.insert(j.vm_index);
  EXPECT_EQ(used.size(), 4u);
}

TEST(Queue, ClassAwareSpreadsSameClassJobs) {
  std::vector<ArrivingJob> jobs;
  for (int i = 0; i < 4; ++i)
    jobs.push_back({"postmark", ApplicationClass::kIo, i});
  ArrivalExperimentOptions options;
  options.vm_count = 4;
  const auto outcome =
      run_arrival_experiment(jobs, class_aware_policy(), options);
  std::set<std::size_t> used;
  for (const auto& j : outcome.jobs) used.insert(j.vm_index);
  EXPECT_EQ(used.size(), 4u);  // never two io jobs on one VM
}

TEST(Queue, LeastLoadedBalancesCounts) {
  std::vector<ArrivingJob> jobs;
  for (int i = 0; i < 6; ++i)
    jobs.push_back({"postmark", ApplicationClass::kIo, i});
  ArrivalExperimentOptions options;
  options.vm_count = 3;
  const auto outcome =
      run_arrival_experiment(jobs, least_loaded_policy(), options);
  std::array<int, 3> counts{};
  for (const auto& j : outcome.jobs) ++counts[j.vm_index];
  for (const int c : counts) EXPECT_EQ(c, 2);
}

TEST(Queue, RandomPolicyStaysInRange) {
  const auto jobs = make_mixed_arrivals(10, 30.0, 4);
  ArrivalExperimentOptions options;
  options.vm_count = 3;
  const auto outcome =
      run_arrival_experiment(jobs, random_policy(8), options);
  for (const auto& j : outcome.jobs) EXPECT_LT(j.vm_index, 3u);
}

TEST(Queue, ThroughputFormula) {
  DispatchOutcome o;
  o.jobs.push_back({"a", ApplicationClass::kCpu, 0, 0, 86400});
  o.jobs.push_back({"b", ApplicationClass::kIo, 0, 0, 43200});
  EXPECT_DOUBLE_EQ(o.throughput_jobs_per_day(), 3.0);
}

}  // namespace
}  // namespace appclass::sched
