#include "core/online.hpp"

#include <gtest/gtest.h>

#include "core_test_util.hpp"

namespace appclass::core {
namespace {

class OnlineTest : public ::testing::Test {
 protected:
  void SetUp() override { pipeline_.train(testing::synthetic_training()); }

  /// Feeds `n` snapshots of one class at 1 Hz starting at `t0`.
  metrics::SimTime feed(OnlineClassifier& oc, ApplicationClass cls,
                        std::size_t n, metrics::SimTime t0,
                        const std::string& ip = "10.0.0.1") {
    linalg::Rng rng(static_cast<std::uint64_t>(t0) + 17);
    for (std::size_t i = 0; i < n; ++i) {
      auto s = testing::synthetic_snapshot(cls, rng, t0);
      s.node_ip = ip;
      oc.observe(s);
      ++t0;
    }
    return t0;
  }

  ClassificationPipeline pipeline_;
};

TEST_F(OnlineTest, ClassifiesOnSamplingGridOnly) {
  OnlineClassifier oc(pipeline_, {.sampling_interval_s = 5});
  feed(oc, ApplicationClass::kCpu, 20, 0);
  EXPECT_EQ(oc.classified_count(), 4u);  // t = 0, 5, 10, 15
}

TEST_F(OnlineTest, RollingCompositionTracksBehaviour) {
  OnlineClassifier oc(pipeline_, {.sampling_interval_s = 1, .window = 10});
  feed(oc, ApplicationClass::kIo, 20, 0);
  const auto comp = oc.composition("10.0.0.1");
  ASSERT_TRUE(comp.has_value());
  EXPECT_EQ(comp->samples(), 10u);  // window bounded
  EXPECT_GT(comp->fraction(ApplicationClass::kIo), 0.8);
  EXPECT_EQ(oc.current_class("10.0.0.1"), ApplicationClass::kIo);
}

TEST_F(OnlineTest, UnknownNodeReturnsNullopt) {
  OnlineClassifier oc(pipeline_);
  EXPECT_FALSE(oc.composition("10.9.9.9").has_value());
  EXPECT_FALSE(oc.current_class("10.9.9.9").has_value());
}

TEST_F(OnlineTest, DetectsBehaviourChangeWithDebounce) {
  OnlineClassifier oc(pipeline_,
                      {.sampling_interval_s = 1, .window = 6, .stability = 3});
  std::vector<BehaviourChange> changes;
  oc.on_change([&](const BehaviourChange& c) { changes.push_back(c); });

  metrics::SimTime t = feed(oc, ApplicationClass::kCpu, 12, 0);
  EXPECT_TRUE(changes.empty());
  feed(oc, ApplicationClass::kNetwork, 12, t);
  ASSERT_EQ(changes.size(), 1u);
  EXPECT_EQ(changes[0].from, ApplicationClass::kCpu);
  EXPECT_EQ(changes[0].to, ApplicationClass::kNetwork);
  EXPECT_EQ(oc.current_class("10.0.0.1"), ApplicationClass::kNetwork);
}

TEST_F(OnlineTest, BriefBlipDoesNotFireChange) {
  OnlineClassifier oc(pipeline_,
                      {.sampling_interval_s = 1, .window = 8, .stability = 4});
  int changes = 0;
  oc.on_change([&](const BehaviourChange&) { ++changes; });
  metrics::SimTime t = feed(oc, ApplicationClass::kCpu, 12, 0);
  t = feed(oc, ApplicationClass::kIo, 3, t);  // blip < half the window
  feed(oc, ApplicationClass::kCpu, 12, t);
  EXPECT_EQ(changes, 0);
  EXPECT_EQ(oc.current_class("10.0.0.1"), ApplicationClass::kCpu);
}

TEST_F(OnlineTest, TracksNodesIndependently) {
  OnlineClassifier oc(pipeline_, {.sampling_interval_s = 1, .window = 8});
  feed(oc, ApplicationClass::kCpu, 10, 0, "10.0.0.1");
  feed(oc, ApplicationClass::kNetwork, 10, 0, "10.0.0.2");
  EXPECT_EQ(oc.current_class("10.0.0.1"), ApplicationClass::kCpu);
  EXPECT_EQ(oc.current_class("10.0.0.2"), ApplicationClass::kNetwork);
}

TEST_F(OnlineTest, ContiguousStreamHasFullCoverage) {
  OnlineClassifier oc(pipeline_, {.sampling_interval_s = 1, .window = 10});
  feed(oc, ApplicationClass::kCpu, 15, 0);
  ASSERT_TRUE(oc.coverage("10.0.0.1").has_value());
  EXPECT_DOUBLE_EQ(*oc.coverage("10.0.0.1"), 1.0);
  EXPECT_FALSE(oc.degraded("10.0.0.1"));
  EXPECT_EQ(oc.abstained_count(), 0u);
  EXPECT_FALSE(oc.coverage("10.9.9.9").has_value());
}

TEST_F(OnlineTest, AbstainsAfterMonitoringGap) {
  OnlineClassifier oc(pipeline_, {.sampling_interval_s = 1,
                                  .window = 10,
                                  .stability = 3,
                                  .min_coverage = 0.5});
  feed(oc, ApplicationClass::kCpu, 20, 0);
  EXPECT_EQ(oc.current_class("10.0.0.1"), ApplicationClass::kCpu);
  EXPECT_FALSE(oc.degraded("10.0.0.1"));

  // A long blackout, then one lone post-gap sample: the window is almost
  // empty, so the classifier abstains and holds the last stable class
  // instead of trusting the fragment.
  feed(oc, ApplicationClass::kNetwork, 1, 200);
  EXPECT_TRUE(oc.degraded("10.0.0.1"));
  EXPECT_LT(*oc.coverage("10.0.0.1"), 0.5);
  EXPECT_EQ(oc.current_class("10.0.0.1"), ApplicationClass::kCpu);
  EXPECT_EQ(oc.abstained_count(), 1u);
}

TEST_F(OnlineTest, RecoversFromGapAndThenReportsChange) {
  OnlineClassifier oc(pipeline_, {.sampling_interval_s = 1,
                                  .window = 10,
                                  .stability = 3,
                                  .min_coverage = 0.5});
  std::vector<BehaviourChange> changes;
  oc.on_change([&](const BehaviourChange& c) { changes.push_back(c); });

  metrics::SimTime t = feed(oc, ApplicationClass::kCpu, 20, 0);
  (void)t;
  // Resume after a gap with a different behaviour: the first few samples
  // are absorbed as abstentions, then the window refills, coverage
  // crosses the threshold, and the change fires from healthy evidence.
  feed(oc, ApplicationClass::kNetwork, 10, 200);
  EXPECT_FALSE(oc.degraded("10.0.0.1"));
  EXPECT_GT(oc.abstained_count(), 0u);
  ASSERT_EQ(changes.size(), 1u);
  EXPECT_EQ(changes[0].from, ApplicationClass::kCpu);
  EXPECT_EQ(changes[0].to, ApplicationClass::kNetwork);
  EXPECT_EQ(oc.current_class("10.0.0.1"), ApplicationClass::kNetwork);
}

TEST_F(OnlineTest, ZeroMinCoverageDisablesAbstention) {
  OnlineClassifier oc(pipeline_, {.sampling_interval_s = 1,
                                  .window = 4,
                                  .stability = 1,
                                  .min_coverage = 0.0});
  int changes = 0;
  oc.on_change([&](const BehaviourChange&) { ++changes; });
  metrics::SimTime t = feed(oc, ApplicationClass::kCpu, 8, 0);
  (void)t;
  feed(oc, ApplicationClass::kIo, 1, 100);  // lone post-gap fragment
  EXPECT_EQ(oc.abstained_count(), 0u);
  EXPECT_FALSE(oc.degraded("10.0.0.1"));
  // Without abstention the fragment wins the (evicted-to-one) window.
  EXPECT_EQ(changes, 1);
  EXPECT_EQ(oc.current_class("10.0.0.1"), ApplicationClass::kIo);
}

TEST_F(OnlineTest, ObserveReturnsAssignedLabel) {
  OnlineClassifier oc(pipeline_, {.sampling_interval_s = 2});
  linalg::Rng rng(3);
  auto s = testing::synthetic_snapshot(ApplicationClass::kMemory, rng, 2);
  const auto label = oc.observe(s);
  ASSERT_TRUE(label.has_value());
  EXPECT_EQ(*label, ApplicationClass::kMemory);
  s.time = 3;
  EXPECT_FALSE(oc.observe(s).has_value());  // off-grid
}

}  // namespace
}  // namespace appclass::core
