#include "linalg/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "linalg/random.hpp"

namespace appclass::linalg {
namespace {

TEST(Stats, MeanOfKnownSeries) {
  const std::vector<double> v = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(mean(v), 2.5);
}

TEST(Stats, MeanOfEmptyIsZero) {
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{}), 0.0);
}

TEST(Stats, PopulationVariance) {
  const std::vector<double> v = {2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(variance(v), 4.0);
  EXPECT_DOUBLE_EQ(stddev(v), 2.0);
}

TEST(Stats, SampleVarianceUsesNMinusOne) {
  const std::vector<double> v = {1, 3};
  EXPECT_DOUBLE_EQ(sample_variance(v), 2.0);
  EXPECT_DOUBLE_EQ(variance(v), 1.0);
}

TEST(Stats, ColumnStatsPerColumn) {
  const Matrix m{{1, 10}, {3, 10}};
  const ColumnStats cs = column_stats(m);
  EXPECT_DOUBLE_EQ(cs.mean[0], 2.0);
  EXPECT_DOUBLE_EQ(cs.mean[1], 10.0);
  EXPECT_DOUBLE_EQ(cs.stddev[0], 1.0);
}

TEST(Stats, ConstantColumnFlooredNotDivByZero) {
  const Matrix m{{5, 1}, {5, 2}};
  const ColumnStats cs = column_stats(m);
  EXPECT_GT(cs.stddev[0], 0.0);
  const Matrix n = normalize(m, cs);
  EXPECT_DOUBLE_EQ(n.at(0, 0), 0.0);  // constant column maps to zero
  EXPECT_DOUBLE_EQ(n.at(1, 0), 0.0);
}

TEST(Stats, NormalizeGivesZeroMeanUnitVariance) {
  Rng rng(5);
  Matrix m(200, 3);
  for (std::size_t r = 0; r < m.rows(); ++r)
    for (std::size_t c = 0; c < m.cols(); ++c)
      m(r, c) = rng.normal(5.0 * static_cast<double>(c + 1), 2.0);
  const ColumnStats cs = column_stats(m);
  const Matrix n = normalize(m, cs);
  const ColumnStats after = column_stats(n);
  for (std::size_t c = 0; c < 3; ++c) {
    EXPECT_NEAR(after.mean[c], 0.0, 1e-9);
    EXPECT_NEAR(after.stddev[c], 1.0, 1e-9);
  }
}

TEST(Stats, NormalizeRowMatchesMatrixNormalize) {
  const Matrix m{{1, 2}, {3, 6}};
  const ColumnStats cs = column_stats(m);
  std::vector<double> row = {1, 2};
  normalize_row(row, cs);
  const Matrix n = normalize(m, cs);
  EXPECT_DOUBLE_EQ(row[0], n.at(0, 0));
  EXPECT_DOUBLE_EQ(row[1], n.at(0, 1));
}

TEST(Stats, NormalizationReplayOnTestData) {
  // Stats fitted on train must be applied verbatim to test data.
  const Matrix train{{0, 0}, {2, 4}};
  const ColumnStats cs = column_stats(train);
  const Matrix test{{4, 8}};
  const Matrix n = normalize(test, cs);
  EXPECT_DOUBLE_EQ(n.at(0, 0), 3.0);  // (4-1)/1
  EXPECT_DOUBLE_EQ(n.at(0, 1), 3.0);  // (8-2)/2
}

TEST(Stats, CovarianceOfIndependentColumnsNearDiagonal) {
  Rng rng(7);
  Matrix m(4000, 2);
  for (std::size_t r = 0; r < m.rows(); ++r) {
    m(r, 0) = rng.normal(0.0, 1.0);
    m(r, 1) = rng.normal(0.0, 3.0);
  }
  const Matrix cov = covariance(m);
  EXPECT_NEAR(cov.at(0, 0), 1.0, 0.15);
  EXPECT_NEAR(cov.at(1, 1), 9.0, 1.0);
  EXPECT_NEAR(cov.at(0, 1), 0.0, 0.2);
}

TEST(Stats, CovarianceIsSymmetric) {
  Rng rng(9);
  Matrix m(50, 4);
  for (auto& x : m.data()) x = rng.uniform(-1.0, 1.0);
  const Matrix cov = covariance(m);
  EXPECT_LT(cov.max_abs_diff(cov.transposed()), 1e-12);
}

TEST(Stats, ScatterEqualsCovarianceTimesNMinusOne) {
  Rng rng(13);
  Matrix m(30, 3);
  for (auto& x : m.data()) x = rng.uniform(0.0, 10.0);
  const Matrix s = scatter(m);
  Matrix c = covariance(m);
  c *= static_cast<double>(m.rows() - 1);
  EXPECT_LT(s.max_abs_diff(c), 1e-8);
}

TEST(Stats, CorrelationOfPerfectlyLinearSeries) {
  const std::vector<double> a = {1, 2, 3, 4};
  const std::vector<double> b = {2, 4, 6, 8};
  const std::vector<double> neg = {8, 6, 4, 2};
  EXPECT_NEAR(correlation(a, b), 1.0, 1e-12);
  EXPECT_NEAR(correlation(a, neg), -1.0, 1e-12);
}

TEST(Stats, CorrelationOfConstantIsZero) {
  const std::vector<double> a = {1, 2, 3};
  const std::vector<double> c = {5, 5, 5};
  EXPECT_DOUBLE_EQ(correlation(a, c), 0.0);
}

TEST(RunningStats, MatchesBatchStatistics) {
  const std::vector<double> v = {2, 4, 4, 4, 5, 5, 7, 9};
  RunningStats rs;
  for (double x : v) rs.add(x);
  EXPECT_EQ(rs.count(), v.size());
  EXPECT_DOUBLE_EQ(rs.mean(), mean(v));
  EXPECT_NEAR(rs.variance(), variance(v), 1e-12);
  EXPECT_DOUBLE_EQ(rs.min(), 2.0);
  EXPECT_DOUBLE_EQ(rs.max(), 9.0);
}

TEST(RunningStats, EmptyIsZero) {
  const RunningStats rs;
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_DOUBLE_EQ(rs.mean(), 0.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
}

TEST(RunningStats, MergeEqualsSingleStream) {
  Rng rng(21);
  RunningStats all, a, b;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.normal(3.0, 2.0);
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmptyIsIdentity) {
  RunningStats a;
  a.add(1.0);
  a.add(3.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  RunningStats b;
  b.merge(a);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

}  // namespace
}  // namespace appclass::linalg
