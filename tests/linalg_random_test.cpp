#include "linalg/random.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

namespace appclass::linalg {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDifferentStreams) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 2);
}

TEST(Rng, DeriveSeedSeparatesStreams) {
  const auto s1 = derive_seed(42, 0);
  const auto s2 = derive_seed(42, 1);
  EXPECT_NE(s1, s2);
  EXPECT_EQ(derive_seed(42, 0), s1);  // deterministic
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespected) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(9);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIndexBounds) {
  Rng rng(10);
  std::vector<int> counts(7, 0);
  for (int i = 0; i < 70000; ++i)
    ++counts[static_cast<std::size_t>(rng.uniform_index(7))];
  for (int c : counts) EXPECT_NEAR(c, 10000, 500);
}

TEST(Rng, UniformIndexOfOneIsZero) {
  Rng rng(11);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_index(1), 0u);
}

TEST(Rng, NormalMoments) {
  Rng rng(12);
  const int n = 200000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(2.0, 3.0);
    sum += x;
    sq += x * x;
  }
  const double m = sum / n;
  const double var = sq / n - m * m;
  EXPECT_NEAR(m, 2.0, 0.05);
  EXPECT_NEAR(var, 9.0, 0.2);
}

TEST(Rng, ExponentialMeanIsInverseRate) {
  Rng rng(13);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.exponential(0.25);
    EXPECT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 4.0, 0.1);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(14);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, PoissonSmallMean) {
  Rng rng(15);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i)
    sum += static_cast<double>(rng.poisson(3.5));
  EXPECT_NEAR(sum / n, 3.5, 0.1);
}

TEST(Rng, PoissonLargeMeanUsesNormalApprox) {
  Rng rng(16);
  const int n = 20000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i)
    sum += static_cast<double>(rng.poisson(200.0));
  EXPECT_NEAR(sum / n, 200.0, 2.0);
}

TEST(Rng, PoissonZeroMeanIsZero) {
  Rng rng(17);
  EXPECT_EQ(rng.poisson(0.0), 0u);
}

TEST(Rng, LognormalMedianNearExpMu) {
  Rng rng(18);
  std::vector<double> xs(50001);
  for (auto& x : xs) x = rng.lognormal(1.0, 0.5);
  std::nth_element(xs.begin(), xs.begin() + 25000, xs.end());
  EXPECT_NEAR(xs[25000], std::exp(1.0), 0.1);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(19);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> shuffled = v;
  rng.shuffle(std::span<int>(shuffled));
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, SplitMix64KnownSequenceIsStable) {
  std::uint64_t s = 0;
  const std::uint64_t first = splitmix64(s);
  std::uint64_t s2 = 0;
  EXPECT_EQ(splitmix64(s2), first);
  EXPECT_NE(splitmix64(s2), first);  // state advanced
}

}  // namespace
}  // namespace appclass::linalg
