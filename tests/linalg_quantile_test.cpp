#include "linalg/quantile.hpp"

#include <gtest/gtest.h>

#include "linalg/random.hpp"

namespace appclass::linalg {
namespace {

TEST(Quantile, ExtremesAreMinMax) {
  const std::vector<double> v = {5, 1, 9, 3};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 9.0);
}

TEST(Quantile, MedianOfOddAndEven) {
  const std::vector<double> odd = {3, 1, 2};
  EXPECT_DOUBLE_EQ(median(odd), 2.0);
  const std::vector<double> even = {4, 1, 3, 2};
  EXPECT_DOUBLE_EQ(median(even), 2.5);
}

TEST(Quantile, InterpolatesBetweenOrderStatistics) {
  const std::vector<double> v = {0, 10};
  EXPECT_DOUBLE_EQ(quantile(v, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(quantile(v, 0.75), 7.5);
}

TEST(Quantile, SingleElement) {
  const std::vector<double> v = {42};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 42.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 42.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 42.0);
}

TEST(Quantile, MonotoneInQ) {
  Rng rng(3);
  std::vector<double> v(200);
  for (auto& x : v) x = rng.normal(0.0, 5.0);
  double prev = quantile(v, 0.0);
  for (double q = 0.1; q <= 1.0; q += 0.1) {
    const double cur = quantile(v, q);
    EXPECT_GE(cur, prev);
    prev = cur;
  }
}

TEST(Quantile, InputOrderIrrelevant) {
  const std::vector<double> a = {1, 2, 3, 4, 5};
  const std::vector<double> b = {5, 3, 1, 4, 2};
  EXPECT_DOUBLE_EQ(quantile(a, 0.3), quantile(b, 0.3));
}

TEST(Histogram, BinsCountsAndRanges) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);   // bin 0
  h.add(3.0);   // bin 1
  h.add(3.9);   // bin 1
  h.add(9.99);  // bin 4
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(1), 2u);
  EXPECT_EQ(h.bin_count(4), 1u);
  const auto [lo, hi] = h.bin_range(1);
  EXPECT_DOUBLE_EQ(lo, 2.0);
  EXPECT_DOUBLE_EQ(hi, 4.0);
}

TEST(Histogram, OutOfRangeClampsToEdgeBins) {
  Histogram h(0.0, 10.0, 2);
  h.add(-100.0);
  h.add(100.0);
  h.add(10.0);  // exactly hi clamps into the last bin
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(1), 2u);
}

TEST(Histogram, CumulativeFractionReachesOne) {
  Histogram h(0.0, 1.0, 4);
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) h.add(rng.uniform());
  EXPECT_NEAR(h.cumulative_fraction(1), 0.5, 0.06);
  EXPECT_DOUBLE_EQ(h.cumulative_fraction(3), 1.0);
}

TEST(Histogram, AddAllMatchesIndividualAdds) {
  const std::vector<double> v = {0.1, 0.2, 0.7, 0.9};
  Histogram a(0.0, 1.0, 2), b(0.0, 1.0, 2);
  a.add_all(v);
  for (const double x : v) b.add(x);
  for (std::size_t bin = 0; bin < 2; ++bin)
    EXPECT_EQ(a.bin_count(bin), b.bin_count(bin));
}

TEST(Histogram, ToStringHasOneLinePerBin) {
  Histogram h(0.0, 4.0, 4);
  h.add(1.0);
  const std::string s = h.to_string();
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 4);
  EXPECT_NE(s.find('#'), std::string::npos);
}

}  // namespace
}  // namespace appclass::linalg
