// Threaded classification must be bit-identical to serial — not "close",
// identical. The engine guarantees it structurally (fixed grain-based
// shard boundaries, per-slot writes, serial reductions); this suite
// proves it on the five canonical workloads across parallelism 1/2/8,
// for the batch pipeline, the fleet batch classifier, and the online
// fleet stream.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "core/online.hpp"
#include "core/pipeline.hpp"
#include "core/trainer.hpp"
#include "engine/fleet.hpp"

namespace appclass {
namespace {

const std::vector<core::LabeledPool>& canonical_pools() {
  static const std::vector<core::LabeledPool> pools =
      core::collect_training_pools();
  return pools;
}

core::ClassificationPipeline trained(std::size_t parallelism) {
  core::PipelineOptions options;
  options.novelty_threshold = 2.5;  // exercise the novelty vector too
  options.parallelism = parallelism;
  core::ClassificationPipeline pipeline(options);
  pipeline.train(canonical_pools());
  return pipeline;
}

void expect_identical(const core::ClassificationResult& serial,
                      const core::ClassificationResult& threaded) {
  // operator== on vectors/Matrix compares element bits for doubles —
  // exactly the claim under test.
  EXPECT_EQ(serial.class_vector, threaded.class_vector);
  EXPECT_EQ(serial.confidences, threaded.confidences);
  EXPECT_EQ(serial.novelty, threaded.novelty);
  EXPECT_EQ(serial.projected, threaded.projected);
  EXPECT_EQ(serial.application_class, threaded.application_class);
  EXPECT_EQ(serial.mean_confidence(), threaded.mean_confidence());
  EXPECT_EQ(serial.novel_fraction(), threaded.novel_fraction());
}

TEST(EngineDeterminism, ThreadedPipelineMatchesSerialOnCanonicalWorkloads) {
  const core::ClassificationPipeline serial = trained(1);
  for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    const core::ClassificationPipeline threaded = trained(threads);
    // Training itself must be deterministic first.
    EXPECT_EQ(serial.knn().training_points(), threaded.knn().training_points())
        << "threads=" << threads;
    for (const auto& lp : canonical_pools())
      expect_identical(serial.classify(lp.pool), threaded.classify(lp.pool));
  }
}

TEST(EngineDeterminism, SetParallelismDoesNotChangeResults) {
  core::ClassificationPipeline pipeline = trained(1);
  const auto baseline = pipeline.classify(canonical_pools()[0].pool);
  for (const std::size_t threads :
       {std::size_t{2}, std::size_t{8}, std::size_t{1}}) {
    pipeline.set_parallelism(threads);
    expect_identical(baseline, pipeline.classify(canonical_pools()[0].pool));
  }
}

TEST(EngineDeterminism, BatchClassifierMatchesPerPoolSerialCalls) {
  const core::ClassificationPipeline serial = trained(1);
  const core::ClassificationPipeline pooled = trained(8);
  std::vector<metrics::DataPool> pools;
  for (const auto& lp : canonical_pools()) pools.push_back(lp.pool);

  const engine::BatchClassifier batch(pooled);
  const auto results = batch.classify_pools(pools);
  ASSERT_EQ(results.size(), pools.size());
  for (std::size_t p = 0; p < pools.size(); ++p)
    expect_identical(serial.classify(pools[p]), results[p]);
}

TEST(EngineDeterminism, FleetStreamDrainMatchesObserveByObserve) {
  const core::ClassificationPipeline serial = trained(1);
  const core::ClassificationPipeline pooled = trained(8);

  // Reference: observe() snapshot by snapshot, recording change events.
  core::OnlineClassifier reference(serial);
  std::vector<core::BehaviourChange> reference_changes;
  reference.on_change([&](const core::BehaviourChange& change) {
    reference_changes.push_back(change);
  });

  engine::FleetStream stream(pooled);
  std::vector<core::BehaviourChange> stream_changes;
  stream.online().on_change([&](const core::BehaviourChange& change) {
    stream_changes.push_back(change);
  });

  // Interleave the five nodes' streams the way a bus would deliver them,
  // draining mid-stream at irregular points.
  std::size_t pushed = 0;
  const auto& pools = canonical_pools();
  const std::size_t longest = [&] {
    std::size_t n = 0;
    for (const auto& lp : pools) n = std::max(n, lp.pool.size());
    return n;
  }();
  for (std::size_t i = 0; i < longest; ++i) {
    for (const auto& lp : pools) {
      if (i >= lp.pool.size()) continue;
      reference.observe(lp.pool[i]);
      stream.push(lp.pool[i]);
      ++pushed;
      if (pushed % 97 == 0) stream.drain();
    }
  }
  stream.drain();
  EXPECT_EQ(stream.backlog(), 0u);

  EXPECT_EQ(stream.online().classified_count(), reference.classified_count());
  EXPECT_EQ(stream.online().abstained_count(), reference.abstained_count());
  ASSERT_EQ(stream_changes.size(), reference_changes.size());
  for (std::size_t i = 0; i < stream_changes.size(); ++i) {
    EXPECT_EQ(stream_changes[i].node_ip, reference_changes[i].node_ip);
    EXPECT_EQ(stream_changes[i].time, reference_changes[i].time);
    EXPECT_EQ(stream_changes[i].from, reference_changes[i].from);
    EXPECT_EQ(stream_changes[i].to, reference_changes[i].to);
  }
  for (const auto& lp : pools) {
    const std::string& ip = lp.pool.node_ip();
    EXPECT_EQ(stream.online().current_class(ip), reference.current_class(ip));
    EXPECT_EQ(stream.online().coverage(ip), reference.coverage(ip));
  }
}

}  // namespace
}  // namespace appclass
