#include "workloads/trace_replay.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "monitor/harness.hpp"
#include "sim/testbed.hpp"
#include "workloads/catalog.hpp"

namespace appclass::workloads {
namespace {

DemandTrace record_postmark_trace(std::uint64_t seed = 7) {
  sim::TestbedOptions opts;
  opts.seed = seed;
  opts.four_vms = false;
  sim::Testbed tb = sim::make_testbed(opts);
  auto recorder = std::make_unique<TraceRecorder>(make_postmark());
  const TraceRecorder* raw = recorder.get();
  const auto id = tb.engine->submit(tb.vm1, std::move(recorder));
  EXPECT_TRUE(tb.engine->run_until_done(10000));
  EXPECT_EQ(static_cast<std::int64_t>(raw->trace().size()),
            tb.engine->instance(id).elapsed());
  return raw->trace();
}

TEST(TraceRecorder, CapturesEveryTick) {
  const DemandTrace trace = record_postmark_trace();
  EXPECT_EQ(trace.app_name, "postmark");
  EXPECT_GT(trace.size(), 100u);
  double total_blocks = 0.0;
  for (const auto& t : trace.ticks)
    total_blocks += t.demand.disk_read_blocks + t.demand.disk_write_blocks;
  EXPECT_GT(total_blocks, 1.0e6);  // postmark moved megabytes of blocks
}

TEST(TraceRecorder, DelegationPreservesBehaviour) {
  // A recorded run must finish in the same time as an unwrapped run.
  auto bare_elapsed = [](std::uint64_t seed) {
    sim::TestbedOptions opts;
    opts.seed = seed;
    opts.four_vms = false;
    sim::Testbed tb = sim::make_testbed(opts);
    const auto id = tb.engine->submit(tb.vm1, make_postmark());
    EXPECT_TRUE(tb.engine->run_until_done(10000));
    return tb.engine->instance(id).elapsed();
  };
  const DemandTrace trace = record_postmark_trace(21);
  EXPECT_EQ(static_cast<std::int64_t>(trace.size()), bare_elapsed(21));
}

TEST(TraceReplay, ReplayMatchesRecordingDuration) {
  const DemandTrace trace = record_postmark_trace();
  sim::TestbedOptions opts;
  opts.seed = 99;  // different seed: replay is deterministic regardless
  opts.four_vms = false;
  sim::Testbed tb = sim::make_testbed(opts);
  const auto id =
      tb.engine->submit(tb.vm1, std::make_unique<TraceReplayApp>(trace));
  EXPECT_TRUE(tb.engine->run_until_done(10000));
  EXPECT_EQ(tb.engine->instance(id).elapsed(),
            static_cast<std::int64_t>(trace.size()));
}

TEST(TraceReplay, ReplayedRunClassifiesLikeTheOriginal) {
  // The trace carries enough signal for the monitor to see the same
  // behaviour: replayed PostMark still produces IO-heavy snapshots.
  const DemandTrace trace = record_postmark_trace();
  sim::TestbedOptions opts;
  opts.seed = 5;
  opts.four_vms = false;
  sim::Testbed tb = sim::make_testbed(opts);
  monitor::ClusterMonitor mon(*tb.engine);
  const auto id =
      tb.engine->submit(tb.vm1, std::make_unique<TraceReplayApp>(trace));
  const auto run = monitor::profile_instance(*tb.engine, mon, id, 5);
  ASSERT_TRUE(run.completed);
  double mean_bo = 0.0;
  for (const auto& s : run.pool.snapshots())
    mean_bo += s.get(metrics::MetricId::kIoBo);
  mean_bo /= static_cast<double>(run.pool.size());
  EXPECT_GT(mean_bo, 2000.0);
}

TEST(TraceCsv, RoundTripsExactly) {
  const DemandTrace trace = record_postmark_trace();
  const DemandTrace restored = trace_from_csv(trace_to_csv(trace));
  ASSERT_EQ(restored.size(), trace.size());
  EXPECT_EQ(restored.app_name, trace.app_name);
  for (std::size_t i = 0; i < trace.size(); i += 17) {
    EXPECT_DOUBLE_EQ(restored.ticks[i].demand.cpu, trace.ticks[i].demand.cpu);
    EXPECT_DOUBLE_EQ(restored.ticks[i].demand.disk_write_blocks,
                     trace.ticks[i].demand.disk_write_blocks);
    EXPECT_DOUBLE_EQ(restored.ticks[i].memory.working_set_mb,
                     trace.ticks[i].memory.working_set_mb);
  }
}

TEST(TraceCsv, RejectsGarbage) {
  EXPECT_THROW(trace_from_csv(""), std::runtime_error);
  EXPECT_THROW(trace_from_csv("wrong header\n"), std::runtime_error);
  EXPECT_THROW(
      trace_from_csv("# appclass-demand-trace v1 app=x\nheader\n1,2,three\n"),
      std::runtime_error);
}

TEST(TraceReplay, EmptyTraceRejected) {
  EXPECT_DEATH(TraceReplayApp(DemandTrace{}), "precondition");
}

}  // namespace
}  // namespace appclass::workloads
