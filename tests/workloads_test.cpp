#include <gtest/gtest.h>

#include "sim/testbed.hpp"
#include "workloads/catalog.hpp"
#include "workloads/interactive_app.hpp"
#include "workloads/phased_app.hpp"

namespace appclass::workloads {
namespace {

linalg::Rng test_rng() { return linalg::Rng(42); }

TEST(PhasedApp, ProgressesThroughPhasesInOrder) {
  Phase a;
  a.name = "a";
  a.work_units = 3.0;
  a.nominal_rate = 1.0;
  a.cpu_per_unit = 1.0;
  a.rate_jitter = 0.0;
  Phase b = a;
  b.name = "b";
  PhasedApp app("two-phase", {a, b});
  auto rng = test_rng();
  sim::Grant full{1.0, 1.0, 1.0, 1.0};
  EXPECT_EQ(app.current_phase(), 0u);
  for (int i = 0; i < 3; ++i) {
    app.demand(i, rng);
    app.advance(full, i, rng);
  }
  EXPECT_EQ(app.current_phase(), 1u);
  EXPECT_FALSE(app.finished());
  for (int i = 0; i < 3; ++i) {
    app.demand(i, rng);
    app.advance(full, i, rng);
  }
  EXPECT_TRUE(app.finished());
}

TEST(PhasedApp, IterationsRepeatThePhaseList) {
  Phase p;
  p.work_units = 2.0;
  p.nominal_rate = 1.0;
  p.cpu_per_unit = 1.0;
  p.rate_jitter = 0.0;
  PhasedApp app("looped", {p}, /*iterations=*/3);
  auto rng = test_rng();
  sim::Grant full{1.0, 1.0, 1.0, 1.0};
  int ticks = 0;
  while (!app.finished() && ticks < 100) {
    app.demand(ticks, rng);
    app.advance(full, ticks, rng);
    ++ticks;
  }
  EXPECT_EQ(ticks, 6);
}

TEST(PhasedApp, DemandScalesWithMix) {
  Phase p;
  p.work_units = 100.0;
  p.nominal_rate = 2.0;
  p.cpu_per_unit = 0.25;
  p.read_blocks_per_unit = 100.0;
  p.net_out_per_unit = 1000.0;
  p.rate_jitter = 0.0;
  PhasedApp app("mix", {p});
  auto rng = test_rng();
  const sim::AppDemand d = app.demand(0, rng);
  EXPECT_DOUBLE_EQ(d.cpu, 0.5);
  EXPECT_DOUBLE_EQ(d.disk_read_blocks, 200.0);
  EXPECT_DOUBLE_EQ(d.net_out_bytes, 2000.0);
}

TEST(PhasedApp, FinalTickClampsToRemainingWork) {
  Phase p;
  p.work_units = 1.5;
  p.nominal_rate = 1.0;
  p.cpu_per_unit = 1.0;
  p.rate_jitter = 0.0;
  PhasedApp app("clamp", {p});
  auto rng = test_rng();
  sim::Grant full{1.0, 1.0, 1.0, 1.0};
  app.demand(0, rng);
  app.advance(full, 0, rng);
  const sim::AppDemand d = app.demand(1, rng);
  EXPECT_DOUBLE_EQ(d.cpu, 0.5);  // only half a unit left
}

TEST(PhasedApp, CpuSpeedAcceleratesCpuBoundPhases) {
  Phase p;
  p.work_units = 12.0;
  p.nominal_rate = 1.0;
  p.cpu_per_unit = 1.0;
  p.speed_sensitivity = 1.0;
  p.rate_jitter = 0.0;
  PhasedApp app("speedy", {p});
  auto rng = test_rng();
  sim::Grant fast{1.0, 1.5, 1.0, 1.0};
  int ticks = 0;
  while (!app.finished() && ticks < 100) {
    app.demand(ticks, rng);
    app.advance(fast, ticks, rng);
    ++ticks;
  }
  EXPECT_EQ(ticks, 8);  // 12 units at 1.5 units/tick
}

TEST(PhasedApp, IoStallsMakeExecutionBimodal) {
  Phase p;
  p.work_units = 1000.0;
  p.nominal_rate = 1.0;
  p.cpu_per_unit = 1.0;
  p.read_blocks_per_unit = 1000.0;
  p.io_sensitivity = 1.0;
  p.rate_jitter = 0.0;
  PhasedApp app("stally", {p});
  auto rng = test_rng();
  sim::Grant cache_miss{1.0, 1.0, 1.0, /*io_penalty=*/0.25};
  int stall_ticks = 0, work_ticks = 0;
  for (int i = 0; i < 400; ++i) {
    const sim::AppDemand d = app.demand(i, rng);
    if (d.cpu < 0.5)
      ++stall_ticks;  // stalled: token CPU, burst I/O
    else
      ++work_ticks;
    app.advance(cache_miss, i, rng);
  }
  // io_penalty 0.25 -> ~75% of ticks are stalls.
  EXPECT_GT(stall_ticks, 200);
  EXPECT_GT(work_ticks, 40);
}

TEST(PhasedApp, NoStallsWhenCacheAbsorbs) {
  Phase p;
  p.work_units = 1000.0;
  p.nominal_rate = 1.0;
  p.cpu_per_unit = 1.0;
  p.read_blocks_per_unit = 1000.0;
  p.io_sensitivity = 1.0;
  p.rate_jitter = 0.0;
  PhasedApp app("cached", {p});
  auto rng = test_rng();
  sim::Grant cached{1.0, 1.0, 1.0, /*io_penalty=*/1.0};
  for (int i = 0; i < 100; ++i) {
    const sim::AppDemand d = app.demand(i, rng);
    EXPECT_GT(d.cpu, 0.5);
    app.advance(cached, i, rng);
  }
}

TEST(InteractiveApp, SessionEndsOnSchedule) {
  ActivityState s;
  s.name = "only";
  s.mean_dwell_s = 5.0;
  s.cpu = 0.1;
  InteractiveApp app("session", {s}, 30.0);
  auto rng = test_rng();
  sim::Grant full{1.0, 1.0, 1.0, 1.0};
  int ticks = 0;
  while (!app.finished() && ticks < 100) {
    app.demand(ticks, rng);
    app.advance(full, ticks, rng);
    ++ticks;
  }
  EXPECT_EQ(ticks, 30);
}

TEST(InteractiveApp, VisitsMultipleStates) {
  ActivityState a;
  a.name = "a";
  a.mean_dwell_s = 3.0;
  a.weight = 1.0;
  ActivityState b = a;
  b.name = "b";
  InteractiveApp app("hopper", {a, b}, 500.0);
  auto rng = test_rng();
  sim::Grant full{1.0, 1.0, 1.0, 1.0};
  bool visited_b = false;
  for (int i = 0; i < 400 && !app.finished(); ++i) {
    app.demand(i, rng);
    if (app.current_state() == 1) visited_b = true;
    app.advance(full, i, rng);
  }
  EXPECT_TRUE(visited_b);
}

TEST(Catalog, AllNamesConstructible) {
  for (const auto& name : catalog_names()) {
    const auto model = make_by_name(name, /*peer_vm=*/0);
    ASSERT_NE(model, nullptr) << name;
    EXPECT_FALSE(model->finished()) << name;
  }
  EXPECT_EQ(make_by_name("not_an_app"), nullptr);
}

TEST(Catalog, IdleAppDemandsNothing) {
  auto idle = make_idle(10.0);
  auto rng = test_rng();
  const sim::AppDemand d = idle->demand(0, rng);
  EXPECT_TRUE(d.idle());
}

TEST(Catalog, PostmarkNfsMovesIoToNetwork) {
  auto rng = test_rng();
  auto local = make_postmark(false);
  auto nfs = make_postmark(true);
  const sim::AppDemand dl = local->demand(0, rng);
  const sim::AppDemand dn = nfs->demand(0, rng);
  EXPECT_GT(dl.disk_read_blocks + dl.disk_write_blocks, 5000.0);
  EXPECT_LT(dl.net_in_bytes + dl.net_out_bytes, 1.0);
  EXPECT_DOUBLE_EQ(dn.disk_read_blocks + dn.disk_write_blocks, 0.0);
  EXPECT_GT(dn.net_in_bytes + dn.net_out_bytes, 5.0e6);
}

TEST(Catalog, NetworkAppsTargetTheirPeer) {
  auto rng = test_rng();
  auto ettcp = make_ettcp(3);
  EXPECT_EQ(ettcp->demand(0, rng).net_peer_vm, 3);
  auto netpipe = make_netpipe(2);
  // NetPIPE's first phase is local setup; run past it.
  sim::Grant full{1.0, 1.0, 1.0, 1.0};
  for (int i = 0; i < 60; ++i) {
    netpipe->demand(i, rng);
    netpipe->advance(full, i, rng);
  }
  const sim::AppDemand d = netpipe->demand(60, rng);
  EXPECT_EQ(d.net_peer_vm, 2);
}

TEST(Catalog, PagebenchWorkingSetExceedsStandardVm) {
  auto pb = make_pagebench();
  EXPECT_GT(pb->memory().working_set_mb, 256.0);
}

TEST(Catalog, SpecseisElapsedRespondsToVmMemory) {
  // The paper's A/B contrast: medium SPECseis96 takes ~1.5x longer in a
  // 32 MB VM than in a 256 MB VM.
  auto run_in = [](double ram_mb) {
    sim::TestbedOptions opts;
    opts.seed = 5;
    opts.four_vms = false;
    opts.vm1_ram_mb = ram_mb;
    sim::Testbed tb = sim::make_testbed(opts);
    const auto id = tb.engine->submit(
        tb.vm1, make_specseis(SeisDataSize::kMedium));
    EXPECT_TRUE(tb.engine->run_until_done(100000));
    return static_cast<double>(tb.engine->instance(id).elapsed());
  };
  const double big = run_in(256.0);
  const double small = run_in(32.0);
  EXPECT_GT(small / big, 1.2);
  EXPECT_LT(small / big, 2.4);
}

TEST(Catalog, StandaloneRunTimesAreInCalibratedRange) {
  struct Expect {
    const char* app;
    double lo, hi;
  };
  // Coarse bands around the Table 3 / Table 4 sample counts.
  const Expect expectations[] = {
      {"postmark", 200.0, 330.0},     // paper: ~260 s (52 samples)
      {"ch3d", 420.0, 560.0},         // paper Table 4: 488 s
      {"simplescalar", 270.0, 360.0}, // paper: ~310 s (62 samples)
  };
  for (const auto& e : expectations) {
    sim::TestbedOptions opts;
    opts.seed = 11;
    opts.four_vms = false;
    sim::Testbed tb = sim::make_testbed(opts);
    const auto id = tb.engine->submit(
        tb.vm1, make_by_name(e.app, static_cast<int>(tb.vm4)));
    ASSERT_TRUE(tb.engine->run_until_done(100000)) << e.app;
    const auto elapsed =
        static_cast<double>(tb.engine->instance(id).elapsed());
    EXPECT_GE(elapsed, e.lo) << e.app;
    EXPECT_LE(elapsed, e.hi) << e.app;
  }
}

}  // namespace
}  // namespace appclass::workloads
