#include "core/knn.hpp"

#include <gtest/gtest.h>

#include <span>
#include <vector>

#include "linalg/random.hpp"

namespace appclass::core {
namespace {

/// Two tight clusters on the x axis: class kCpu near x=0, kIo near x=10.
KnnClassifier two_cluster_classifier(std::size_t k = 3) {
  linalg::Matrix points{{0.0, 0.0}, {0.1, 0.0}, {-0.1, 0.1},
                        {10.0, 0.0}, {10.1, 0.0}, {9.9, -0.1}};
  std::vector<ApplicationClass> labels = {
      ApplicationClass::kCpu, ApplicationClass::kCpu, ApplicationClass::kCpu,
      ApplicationClass::kIo,  ApplicationClass::kIo,  ApplicationClass::kIo};
  KnnClassifier knn(KnnOptions{.k = k});
  knn.train(std::move(points), std::move(labels));
  return knn;
}

/// Single-point label through the canonical query() entry point.
ApplicationClass label_of(const KnnClassifier& knn,
                          std::span<const double> point) {
  return knn.query(point).labels[0];
}

TEST(Knn, ClassifiesClearPoints) {
  const auto knn = two_cluster_classifier();
  EXPECT_EQ(label_of(knn, std::vector<double>{0.05, 0.0}),
            ApplicationClass::kCpu);
  EXPECT_EQ(label_of(knn, std::vector<double>{9.5, 0.0}),
            ApplicationClass::kIo);
}

TEST(Knn, DecisionBoundaryNearMidpoint) {
  const auto knn = two_cluster_classifier();
  EXPECT_EQ(label_of(knn, std::vector<double>{4.0, 0.0}),
            ApplicationClass::kCpu);
  EXPECT_EQ(label_of(knn, std::vector<double>{6.0, 0.0}),
            ApplicationClass::kIo);
}

TEST(Knn, KOneUsesSingleNearestNeighbor) {
  // An outlier of the IO class sits inside the CPU cluster; k=1 follows it,
  // k=3 votes it down.
  linalg::Matrix points{{0.0, 0.0}, {0.2, 0.0}, {0.1, 0.1}, {0.05, 0.0},
                        {10.0, 0.0}};
  std::vector<ApplicationClass> labels = {
      ApplicationClass::kCpu, ApplicationClass::kCpu, ApplicationClass::kCpu,
      ApplicationClass::kIo, ApplicationClass::kIo};
  KnnClassifier k1(KnnOptions{.k = 1});
  k1.train(points, labels);
  EXPECT_EQ(label_of(k1, std::vector<double>{0.05, 0.01}),
            ApplicationClass::kIo);
  KnnClassifier k3(KnnOptions{.k = 3});
  k3.train(points, labels);
  EXPECT_EQ(label_of(k3, std::vector<double>{0.05, 0.01}),
            ApplicationClass::kCpu);
}

TEST(Knn, NearestReturnsSortedByDistance) {
  const auto knn = two_cluster_classifier();
  const auto result = knn.query(std::vector<double>{10.05, 0.0},
                                QueryOptions{.neighbors = true});
  ASSERT_EQ(result.neighbors_per_query, 3u);
  // All three from the IO cluster (indices 3..5), nearest first.
  for (std::size_t rank = 0; rank < 3; ++rank)
    EXPECT_GE(result.neighbor(0, rank), 3u);
  const auto d = [&](std::size_t i) {
    return linalg::squared_distance(knn.training_points().row(i),
                                    std::vector<double>{10.05, 0.0});
  };
  EXPECT_LE(d(result.neighbor(0, 0)), d(result.neighbor(0, 1)));
  EXPECT_LE(d(result.neighbor(0, 1)), d(result.neighbor(0, 2)));
}

TEST(Knn, ThreeWayTieBreaksTowardNearest) {
  // k=3 with three distinct classes: one vote each, nearest wins.
  linalg::Matrix points{{1.0, 0.0}, {2.0, 0.0}, {3.0, 0.0}};
  std::vector<ApplicationClass> labels = {ApplicationClass::kIdle,
                                          ApplicationClass::kCpu,
                                          ApplicationClass::kIo};
  KnnClassifier knn(KnnOptions{.k = 3});
  knn.train(points, labels);
  EXPECT_EQ(label_of(knn, std::vector<double>{1.1, 0.0}),
            ApplicationClass::kIdle);
  EXPECT_EQ(label_of(knn, std::vector<double>{2.9, 0.0}),
            ApplicationClass::kIo);
}

TEST(Knn, ManhattanMetricChangesGeometry) {
  // Point equidistant in L2 but not in L1.
  linalg::Matrix points{{2.0, 0.0}, {1.2, 1.2}};
  std::vector<ApplicationClass> labels = {ApplicationClass::kCpu,
                                          ApplicationClass::kIo};
  KnnClassifier euclid(KnnOptions{.k = 1, .metric = DistanceMetric::kEuclidean});
  euclid.train(points, labels);
  KnnClassifier manhattan(
      KnnOptions{.k = 1, .metric = DistanceMetric::kManhattan});
  manhattan.train(points, labels);
  // Query at origin: L2 distances 2.0 vs 1.697 (io wins);
  // L1 distances 2.0 vs 2.4 (cpu wins).
  EXPECT_EQ(label_of(euclid, std::vector<double>{0.0, 0.0}),
            ApplicationClass::kIo);
  EXPECT_EQ(label_of(manhattan, std::vector<double>{0.0, 0.0}),
            ApplicationClass::kCpu);
}

TEST(Knn, BatchQueryMatchesPointwise) {
  const auto knn = two_cluster_classifier();
  linalg::Matrix queries{{0.0, 0.0}, {10.0, 0.1}, {5.1, 0.0}};
  const auto batch = knn.query(queries).labels;
  ASSERT_EQ(batch.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i)
    EXPECT_EQ(batch[i], label_of(knn, queries.row(i)));
}

TEST(Knn, TrainingAccessors) {
  const auto knn = two_cluster_classifier();
  EXPECT_TRUE(knn.trained());
  EXPECT_EQ(knn.training_size(), 6u);
  EXPECT_EQ(knn.dimension(), 2u);
  EXPECT_EQ(knn.k(), 3u);
  EXPECT_EQ(knn.training_labels()[0], ApplicationClass::kCpu);
}

TEST(Knn, UntrainedReportsNotTrained) {
  const KnnClassifier knn;
  EXPECT_FALSE(knn.trained());
}

TEST(Knn, PerfectRecallOnTrainingPoints) {
  const auto knn = two_cluster_classifier(1);
  for (std::size_t i = 0; i < knn.training_size(); ++i)
    EXPECT_EQ(label_of(knn, knn.training_points().row(i)),
              knn.training_labels()[i]);
}

TEST(Knn, HighDimensionalSeparation) {
  linalg::Rng rng(3);
  linalg::Matrix points(40, 8);
  std::vector<ApplicationClass> labels;
  for (std::size_t i = 0; i < 40; ++i) {
    const bool io = i >= 20;
    for (std::size_t c = 0; c < 8; ++c)
      points(i, c) = rng.normal(io && c >= 4 ? 5.0 : 0.0, 0.4);
    labels.push_back(io ? ApplicationClass::kIo : ApplicationClass::kCpu);
  }
  KnnClassifier knn(KnnOptions{.k = 5});
  knn.train(points, labels);
  std::vector<double> io_query(8, 0.0);
  for (std::size_t c = 4; c < 8; ++c) io_query[c] = 5.0;
  EXPECT_EQ(label_of(knn, io_query), ApplicationClass::kIo);
  EXPECT_EQ(label_of(knn, std::vector<double>(8, 0.0)),
            ApplicationClass::kCpu);
}

}  // namespace
}  // namespace appclass::core
