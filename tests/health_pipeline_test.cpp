// Model-health integration across the classification stack: the detailed
// per-snapshot evidence path, observational transparency of the health
// layer (bit-identical labels and change events with it on or off), the
// drift acceptance criteria on recorded canonical streams, and fleet
// ingest backpressure.
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "core/online.hpp"
#include "core/pipeline.hpp"
#include "core/robustness.hpp"
#include "core/trainer.hpp"
#include "engine/fleet.hpp"
#include "obs/health.hpp"

namespace appclass {
namespace {

/// Trains once and records the canonical streams once for the whole
/// suite: both involve full simulated runs and dominate the test's cost.
class HealthPipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    core::PipelineOptions options;
    options.novelty_threshold = 3.0;
    pipeline_ = new core::ClassificationPipeline(
        core::make_trained_pipeline(options));
    runs_ = new std::vector<core::RecordedRun>(core::record_canonical_runs());
  }

  static void TearDownTestSuite() {
    delete pipeline_;
    pipeline_ = nullptr;
    delete runs_;
    runs_ = nullptr;
  }

  /// `count` grid-aligned snapshots (t = 0, 5, 10, ...) on one node,
  /// cycling the announcements of run `run_index`.
  static std::vector<metrics::Snapshot> grid_stream(std::size_t run_index,
                                                    std::size_t count,
                                                    metrics::SimTime t0 = 0) {
    const auto& source = (*runs_)[run_index].announcements;
    std::vector<metrics::Snapshot> stream;
    stream.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      metrics::Snapshot snapshot = source[i % source.size()];
      snapshot.time = t0 + static_cast<metrics::SimTime>(i) * 5;
      snapshot.node_ip = "10.0.0.1";
      stream.push_back(snapshot);
    }
    return stream;
  }

  static core::ClassificationPipeline* pipeline_;
  static std::vector<core::RecordedRun>* runs_;
};

core::ClassificationPipeline* HealthPipelineTest::pipeline_ = nullptr;
std::vector<core::RecordedRun>* HealthPipelineTest::runs_ = nullptr;

TEST_F(HealthPipelineTest, DetailedClassifyMatchesPlainClassify) {
  for (const auto& run : *runs_) {
    for (std::size_t i = 0; i < run.announcements.size(); i += 7) {
      const auto& snapshot = run.announcements[i];
      const core::ApplicationClass plain = pipeline_->classify(snapshot);
      const core::SnapshotClassification detail =
          pipeline_->classify_detailed(snapshot);
      ASSERT_EQ(detail.label, plain) << run.workload << " @ " << i;
      EXPECT_GT(detail.confidence, 0.0);
      EXPECT_LE(detail.confidence, 1.0);
      EXPECT_GE(detail.vote_margin, 0.0);
      EXPECT_LE(detail.vote_margin, 1.0);
      EXPECT_GE(detail.novelty, 0.0);
      EXPECT_EQ(detail.projected.size(), pipeline_->pca().components());
    }
  }
}

TEST_F(HealthPipelineTest, HealthLayerIsObservationallyTransparent) {
  // Interleave two workloads so the stream exercises behaviour changes.
  std::vector<metrics::Snapshot> stream = grid_stream(0, 120);
  const std::vector<metrics::Snapshot> second =
      grid_stream(2, 120, /*t0=*/120 * 5);
  stream.insert(stream.end(), second.begin(), second.end());

  core::OnlineClassifier bare(*pipeline_);
  core::OnlineClassifier monitored(*pipeline_);
  obs::ModelHealth health(core::make_health_options());
  monitored.attach_health(&health);

  std::vector<core::BehaviourChange> bare_changes;
  std::vector<core::BehaviourChange> monitored_changes;
  bare.on_change([&](const core::BehaviourChange& c) {
    bare_changes.push_back(c);
  });
  monitored.on_change([&](const core::BehaviourChange& c) {
    monitored_changes.push_back(c);
  });

  for (const auto& snapshot : stream) {
    const std::optional<core::ApplicationClass> a = bare.observe(snapshot);
    const std::optional<core::ApplicationClass> b =
        monitored.observe(snapshot);
    ASSERT_EQ(a, b) << "label diverged at t=" << snapshot.time;
  }

  // Bit-identical classification state with the health layer attached.
  EXPECT_EQ(bare.classified_count(), monitored.classified_count());
  EXPECT_EQ(bare.abstained_count(), monitored.abstained_count());
  ASSERT_EQ(bare_changes.size(), monitored_changes.size());
  for (std::size_t i = 0; i < bare_changes.size(); ++i) {
    EXPECT_EQ(bare_changes[i].time, monitored_changes[i].time);
    EXPECT_EQ(bare_changes[i].from, monitored_changes[i].from);
    EXPECT_EQ(bare_changes[i].to, monitored_changes[i].to);
  }

  // And the health side actually observed the stream.
  EXPECT_EQ(health.samples(), monitored.classified_count());
  EXPECT_NE(health.classes_json().find("\"classes\":["), std::string::npos);
  EXPECT_NE(health.nodes_json().find("\"node\":\"10.0.0.1\""),
            std::string::npos);
}

TEST_F(HealthPipelineTest, DriftStaysSilentOnStationaryCanonicalStream) {
  obs::ModelHealthOptions options = core::make_health_options();
  options.drift.stride = 4;
  obs::ModelHealth health(options);
  core::OnlineClassifier classifier(*pipeline_);
  classifier.attach_health(&health);

  // Reference = the projected distribution of the canonical stream
  // itself, so replaying that same stream is stationary by construction
  // (the self-freezing path is covered by the unit tests).
  const std::vector<metrics::Snapshot> stream = grid_stream(1, 700);
  std::vector<double> reference;
  reference.reserve(2 * stream.size());
  std::size_t components = 0;
  for (const auto& snapshot : stream) {
    const core::SnapshotClassification detail =
        pipeline_->classify_detailed(snapshot);
    components = detail.projected.size();
    reference.insert(reference.end(), detail.projected.begin(),
                     detail.projected.end());
  }
  health.set_drift_reference(reference, components);

  for (const auto& snapshot : stream) classifier.observe(snapshot);
  EXPECT_EQ(health.drift_events(), 0u)
      << "stationary canonical stream fired drift: "
      << health.drift_json();
}

TEST_F(HealthPipelineTest, DriftFiresOnPhaseChangeStream) {
  obs::ModelHealthOptions options = core::make_health_options();
  options.drift.stride = 4;
  obs::ModelHealth health(options);
  core::OnlineClassifier classifier(*pipeline_);
  classifier.attach_health(&health);

  // Same reference as the stationary test: run 1's projected stream.
  const std::vector<metrics::Snapshot> base = grid_stream(1, 700);
  std::vector<double> reference;
  std::size_t components = 0;
  for (const auto& snapshot : base) {
    const core::SnapshotClassification detail =
        pipeline_->classify_detailed(snapshot);
    components = detail.projected.size();
    reference.insert(reference.end(), detail.projected.begin(),
                     detail.projected.end());
  }
  health.set_drift_reference(reference, components);

  // Synthetic phase change: the node behaves like run 1, then switches
  // to run 3's behaviour class mid-stream.
  std::vector<metrics::Snapshot> stream = grid_stream(1, 350);
  const std::vector<metrics::Snapshot> after =
      grid_stream(3, 350, /*t0=*/350 * 5);
  stream.insert(stream.end(), after.begin(), after.end());

  std::size_t fired = 0;
  health.on_drift([&](std::size_t, double) { ++fired; });
  for (const auto& snapshot : stream) classifier.observe(snapshot);

  EXPECT_GE(health.drift_events(), 1u)
      << "phase change did not fire: " << health.drift_json();
  EXPECT_EQ(fired, health.drift_events());
}

TEST_F(HealthPipelineTest, FleetStreamDropsOnFullBacklog) {
  core::OnlineOptions options;
  engine::FleetStream stream(*pipeline_, options, /*max_backlog=*/4);
  const std::vector<metrics::Snapshot> snapshots = grid_stream(0, 10);
  std::size_t accepted = 0;
  for (const auto& snapshot : snapshots)
    if (stream.push(snapshot)) ++accepted;
  EXPECT_EQ(accepted, 4u);
  EXPECT_EQ(stream.backlog(), 4u);
  EXPECT_EQ(stream.backlog_peak(), 4u);
  EXPECT_EQ(stream.dropped(), 6u);

  EXPECT_EQ(stream.drain(), 4u);
  EXPECT_EQ(stream.backlog(), 0u);
  // The buffer accepts again after the drain; the peak is sticky.
  EXPECT_TRUE(stream.push(snapshots[0]));
  EXPECT_EQ(stream.backlog_peak(), 4u);
}

TEST_F(HealthPipelineTest, FleetDrainFeedsAttachedHealth) {
  obs::ModelHealth health(core::make_health_options());
  engine::FleetStream monitored(*pipeline_);
  monitored.online().attach_health(&health);
  engine::FleetStream bare(*pipeline_);

  const std::vector<metrics::Snapshot> snapshots = grid_stream(2, 60);
  for (const auto& snapshot : snapshots) {
    monitored.push(snapshot);
    bare.push(snapshot);
  }
  EXPECT_EQ(monitored.drain(), 60u);
  EXPECT_EQ(bare.drain(), 60u);

  // The detailed drain path fed health and produced the same window
  // state as the label-only drain.
  EXPECT_EQ(health.samples(), 60u);
  EXPECT_EQ(monitored.online().current_class("10.0.0.1"),
            bare.online().current_class("10.0.0.1"));
  EXPECT_EQ(monitored.online().classified_count(),
            bare.online().classified_count());
}

}  // namespace
}  // namespace appclass
