// Property tests of the simulator's global invariants: no resource is ever
// oversubscribed, and the allocation is work-conserving for the scenarios
// the scheduling experiments depend on.
#include <gtest/gtest.h>

#include <array>
#include <cmath>

#include "sim/testbed.hpp"
#include "workloads/catalog.hpp"

namespace appclass::sim {
namespace {

/// Runs a random job mix for `ticks` and checks every tick's realized
/// loads against capacities.
class ConservationProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(ConservationProperty, LoadsNeverExceedCapacity) {
  const std::uint64_t seed = GetParam();
  TestbedOptions opts;
  opts.seed = seed;
  opts.four_vms = true;
  Testbed tb = make_testbed(opts);

  // Random mix of catalog apps across the three worker VMs.
  linalg::Rng rng(seed * 13 + 1);
  const auto names = workloads::catalog_names();
  const std::array<VmId, 3> vms = {tb.vm1, tb.vm2, tb.vm3};
  const std::size_t jobs = 2 + rng.uniform_index(6);
  for (std::size_t j = 0; j < jobs; ++j) {
    const auto& name = names[rng.uniform_index(names.size())];
    if (name == "specseis_medium") continue;  // too long for this test
    auto model = workloads::make_by_name(name, static_cast<int>(tb.vm4));
    tb.engine->submit(vms[rng.uniform_index(3)], std::move(model));
  }

  for (int t = 0; t < 400; ++t) {
    tb.engine->step();
    const auto& loads = tb.engine->last_loads();
    const auto& resources = tb.engine->resources();
    ASSERT_EQ(loads.size(), resources.size());
    for (std::size_t r = 0; r < loads.size(); ++r) {
      EXPECT_GE(loads[r], 0.0) << resources[r].name;
      if (!std::isinf(resources[r].capacity)) {
        EXPECT_LE(loads[r], resources[r].capacity * (1.0 + 1e-9))
            << resources[r].name << " at t=" << t;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomMixes, ConservationProperty,
                         ::testing::Range<std::uint64_t>(1, 13));

TEST(Conservation, SaturatedVcpuIsFullyUsed) {
  // Work conservation: two CPU hogs on one VM drive the vCPU to capacity.
  TestbedOptions opts;
  opts.four_vms = false;
  Testbed tb = make_testbed(opts);
  tb.engine->submit(tb.vm1, workloads::make_ch3d(300.0));
  tb.engine->submit(tb.vm1, workloads::make_ch3d(300.0));
  tb.engine->run_for(50);
  const auto& loads = tb.engine->last_loads();
  const auto& resources = tb.engine->resources();
  for (std::size_t r = 0; r < resources.size(); ++r) {
    if (resources[r].name == "vm1.vcpu") {
      EXPECT_NEAR(loads[r], resources[r].capacity,
                  0.02 * resources[r].capacity);
    }
  }
}

TEST(Conservation, IdleClusterHasZeroLoads) {
  TestbedOptions opts;
  opts.four_vms = true;
  Testbed tb = make_testbed(opts);
  tb.engine->run_for(10);
  for (const double load : tb.engine->last_loads())
    EXPECT_DOUBLE_EQ(load, 0.0);
}

}  // namespace
}  // namespace appclass::sim
