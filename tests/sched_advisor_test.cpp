#include "sched/advisor.hpp"

#include <gtest/gtest.h>

#include "monitor/harness.hpp"
#include "sim/testbed.hpp"
#include "workloads/catalog.hpp"

namespace appclass::sched {
namespace {

using core::ApplicationClass;
using metrics::MetricId;

metrics::Snapshot make_node(const std::string& ip, double cpu_idle,
                            double io_blocks, double net_bytes,
                            double mem_free_frac) {
  metrics::Snapshot s;
  s.node_ip = ip;
  s.time = 0;
  s.set(MetricId::kCpuIdle, cpu_idle);
  s.set(MetricId::kIoBi, io_blocks / 2);
  s.set(MetricId::kIoBo, io_blocks / 2);
  s.set(MetricId::kBytesIn, net_bytes / 2);
  s.set(MetricId::kBytesOut, net_bytes / 2);
  s.set(MetricId::kMemTotal, 256.0 * 1024);
  s.set(MetricId::kMemFree, mem_free_frac * 256.0 * 1024);
  return s;
}

struct AdvisorFixture {
  monitor::MetricBus bus;
  monitor::Gmetad gmetad{bus};
  PlacementAdvisor advisor{gmetad};
  std::vector<std::string> candidates = {"cpu-busy", "io-busy", "net-busy"};

  AdvisorFixture() {
    bus.announce(make_node("cpu-busy", 5.0, 500.0, 1.0e6, 0.5));
    bus.announce(make_node("io-busy", 80.0, 9500.0, 1.0e6, 0.5));
    bus.announce(make_node("net-busy", 80.0, 500.0, 60.0e6, 0.5));
  }
};

TEST(Advisor, CpuJobAvoidsCpuBusyNode) {
  AdvisorFixture f;
  const auto pick = f.advisor.recommend(ApplicationClass::kCpu,
                                        f.candidates);
  ASSERT_TRUE(pick.has_value());
  EXPECT_NE(*pick, "cpu-busy");
}

TEST(Advisor, IoJobAvoidsIoBusyNode) {
  AdvisorFixture f;
  const auto ranked = f.advisor.ranking(ApplicationClass::kIo, f.candidates);
  ASSERT_EQ(ranked.size(), 3u);
  EXPECT_EQ(ranked.back().first, "io-busy");
  EXPECT_LT(ranked.back().second, 0.3);
}

TEST(Advisor, NetworkJobAvoidsNetBusyNode) {
  AdvisorFixture f;
  const auto ranked =
      f.advisor.ranking(ApplicationClass::kNetwork, f.candidates);
  EXPECT_EQ(ranked.back().first, "net-busy");
}

TEST(Advisor, HeadroomFormulas) {
  AdvisorFixture f;
  const auto cpu_busy = *f.gmetad.latest("cpu-busy");
  EXPECT_NEAR(f.advisor.headroom(ApplicationClass::kCpu, cpu_busy), 0.05,
              1e-9);
  const auto io_busy = *f.gmetad.latest("io-busy");
  EXPECT_NEAR(f.advisor.headroom(ApplicationClass::kIo, io_busy),
              1.0 - 9500.0 / 11000.0, 1e-9);
  EXPECT_DOUBLE_EQ(f.advisor.headroom(ApplicationClass::kIdle, io_busy), 1.0);
}

TEST(Advisor, MemoryHeadroomCountsCacheAsAvailable) {
  AdvisorFixture f;
  metrics::Snapshot s = make_node("m", 50.0, 0.0, 0.0, 0.25);
  s.set(MetricId::kMemCached, 0.25 * 256.0 * 1024);
  EXPECT_NEAR(f.advisor.headroom(ApplicationClass::kMemory, s), 0.5, 1e-9);
}

TEST(Advisor, UnknownCandidatesSkipped) {
  AdvisorFixture f;
  const std::vector<std::string> ghosts = {"nope1", "nope2"};
  EXPECT_FALSE(
      f.advisor.recommend(ApplicationClass::kCpu, ghosts).has_value());
  const std::vector<std::string> mixed = {"nope", "io-busy"};
  EXPECT_EQ(f.advisor.recommend(ApplicationClass::kCpu, mixed), "io-busy");
}

TEST(Advisor, LiveClusterIntegration) {
  sim::TestbedOptions opts;
  opts.four_vms = true;
  sim::Testbed tb = sim::make_testbed(opts);
  monitor::ClusterMonitor mon(*tb.engine);
  monitor::Gmetad gmetad(mon.bus());
  PlacementAdvisor advisor(gmetad);
  // VM2 is CPU-saturated; VM3 is disk-saturated.
  tb.engine->submit(tb.vm2, workloads::make_ch3d(500.0));
  tb.engine->submit(tb.vm3, workloads::make_postmark());
  tb.engine->run_for(60);
  const std::vector<std::string> candidates = {"10.0.0.2", "10.0.0.3"};
  // A new CPU job should land on the disk-busy VM, and vice versa.
  EXPECT_EQ(advisor.recommend(core::ApplicationClass::kCpu, candidates),
            "10.0.0.3");
  EXPECT_EQ(advisor.recommend(core::ApplicationClass::kIo, candidates),
            "10.0.0.2");
}

}  // namespace
}  // namespace appclass::sched
