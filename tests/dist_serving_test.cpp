// Serving-API tests: per-mode flag parsing of the unified ServeOptions
// surface, deterministic composition text, and the shard-merge identity
// (merge of disjoint per-shard texts == the single-process text).
#include "dist/serving.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core_test_util.hpp"

namespace appclass::serving {
namespace {

core::ClassificationPipeline trained_pipeline() {
  core::ClassificationPipeline pipeline;
  pipeline.train(core::testing::synthetic_training());
  return pipeline;
}

/// Feeds `count` grid-aligned snapshots of one class into a classifier
/// under `node_ip` (per-node streams are independent, so feeding nodes
/// in any interleave yields the same per-node state).
void feed_node(core::OnlineClassifier& online,
               const core::ClassificationPipeline& pipeline,
               const std::string& node_ip, core::ApplicationClass cls,
               std::size_t count, std::uint64_t seed) {
  linalg::Rng rng(seed);
  for (std::size_t i = 0; i < count; ++i) {
    metrics::Snapshot s = core::testing::synthetic_snapshot(
        cls, rng, static_cast<metrics::SimTime>(5 * (i + 1)));
    s.node_ip = node_ip;
    online.ingest(s, pipeline.classify(s));
  }
}

TEST(DistServing, ParseDefaultsToSingleMode) {
  const ParseResult result = parse_serve_args("model.txt", {});
  ASSERT_TRUE(result.options.has_value());
  EXPECT_EQ(result.options->mode, ServeMode::kSingle);
  EXPECT_EQ(result.options->model_path, "model.txt");
  EXPECT_EQ(result.options->port, 9464);
  EXPECT_TRUE(result.options->workers.empty());
}

TEST(DistServing, ParseWorkerAndCoordinatorModes) {
  const ParseResult worker = parse_serve_args(
      "m", {"--mode=worker", "--ingest-port=9301", "--state-dir=/tmp/w0"});
  ASSERT_TRUE(worker.options.has_value());
  EXPECT_EQ(worker.options->mode, ServeMode::kWorker);
  EXPECT_EQ(worker.options->ingest_port, 9301);
  EXPECT_EQ(worker.options->state_dir, "/tmp/w0");

  const ParseResult coord = parse_serve_args(
      "m", {"--mode=coordinator", "--workers=9201:9301,9202:9302",
            "--cycles=4"});
  ASSERT_TRUE(coord.options.has_value());
  EXPECT_EQ(coord.options->mode, ServeMode::kCoordinator);
  ASSERT_EQ(coord.options->workers.size(), 2u);
  EXPECT_EQ(coord.options->workers[0].scrape_port, 9201);
  EXPECT_EQ(coord.options->workers[0].ingest_port, 9301);
  EXPECT_EQ(coord.options->workers[1].scrape_port, 9202);
  EXPECT_EQ(coord.options->workers[1].ingest_port, 9302);
  EXPECT_EQ(coord.options->cycles, 4);
}

TEST(DistServing, ParseRejectsInvalidModeCombinations) {
  // Usage errors return empty options with exit code 2, never a silent
  // ignore of a flag that does not apply to the mode.
  const std::vector<std::vector<std::string>> invalid = {
      {"--mode=cluster"},                          // unknown mode
      {"--workers=9201:9301"},                     // workers w/o coordinator
      {"--mode=worker", "--workers=9201:9301"},    // workers on a worker
      {"--mode=worker", "--cycles=3"},             // cycles on a worker
      {"--mode=coordinator"},                      // coordinator w/o workers
      {"--mode=coordinator", "--workers=9201:9301",
       "--state-dir=/tmp/x"},                      // stateful coordinator
      {"--ingest-port=9301"},                      // ingest port on single
      {"--workers=9201"},                          // malformed endpoint
      {"--mode=coordinator", "--workers=9201:banana"},
      {"--mode=worker", "--ingest-port=99999"},    // port out of range
      {"--cycles=-1"},
  };
  for (const auto& flags : invalid) {
    const ParseResult result = parse_serve_args("m", flags);
    EXPECT_FALSE(result.options.has_value()) << flags.front();
    EXPECT_EQ(result.exit_code, 2) << flags.front();
  }
}

TEST(DistServing, ParseRejectsNonDigitNumericFlags) {
  // Numeric flag values are digits-only: strtoll-style acceptance of
  // leading whitespace, signs, or trailing garbage ("--port= 80",
  // "--port=+80", "--cycles=1e3") silently parsed the wrong number —
  // every value here is a non-negative count/port, so reject outright.
  const std::vector<std::vector<std::string>> invalid = {
      {"--port= 80"},
      {"--port=+80"},
      {"--port=-0"},
      {"--port=80 "},
      {"--duration=1e3"},
      {"--cycles=0x4"},
      {"--max-backlog=  7"},
      {"--sync-every=+1"},
      {"--checkpoint-every=2\n"},
      {"--drift-window=64kb"},
      {"--port=99999999999999999999"},  // longer than any valid value
  };
  for (const auto& flags : invalid) {
    const ParseResult result = parse_serve_args("m", flags);
    EXPECT_FALSE(result.options.has_value()) << "'" << flags.front() << "'";
    EXPECT_EQ(result.exit_code, 2) << "'" << flags.front() << "'";
  }
  // Plain digit strings still parse.
  const ParseResult ok = parse_serve_args("m", {"--port=8080"});
  ASSERT_TRUE(ok.options.has_value());
  EXPECT_EQ(ok.options->port, 8080);
}

TEST(DistServing, ParseKeepsLegacySingleModeFlags) {
  const ParseResult result = parse_serve_args(
      "m", {"--port=9001", "--duration=3", "--drift-window=64",
            "--state-dir=/tmp/s", "--fsync=interval", "--sync-every=8",
            "--checkpoint-every=2", "--max-backlog=100", "--supervised"});
  ASSERT_TRUE(result.options.has_value());
  EXPECT_EQ(result.options->port, 9001);
  EXPECT_EQ(result.options->duration_s, 3);
  EXPECT_EQ(result.options->drift_window, 64);
  EXPECT_EQ(result.options->wal.fsync, persist::FsyncPolicy::kInterval);
  EXPECT_EQ(result.options->wal.sync_every, 8u);
  EXPECT_EQ(result.options->checkpoint_every, 2);
  EXPECT_EQ(result.options->max_backlog, 100);
  EXPECT_TRUE(result.options->supervised);
}

TEST(DistServing, ReplayNodeIpIsPerRun) {
  EXPECT_EQ(replay_node_ip(0), "10.0.0.1");
  EXPECT_EQ(replay_node_ip(3), "10.0.3.1");
}

TEST(DistServing, CompositionTextIsDeterministic) {
  const auto pipeline = trained_pipeline();
  core::OnlineClassifier a(pipeline), b(pipeline);
  for (auto* online : {&a, &b}) {
    feed_node(*online, pipeline, "10.0.0.1", core::ApplicationClass::kCpu,
              20, 11);
    feed_node(*online, pipeline, "10.0.1.1", core::ApplicationClass::kIo,
              20, 12);
  }
  const std::string text = composition_text(a);
  EXPECT_EQ(text, composition_text(b));
  EXPECT_EQ(text.rfind("appclass-composition v1\n", 0), 0u);
  EXPECT_NE(text.find("node 10.0.0.1 "), std::string::npos);
  EXPECT_NE(text.find("node 10.0.1.1 "), std::string::npos);
}

TEST(DistServing, MergeOfDisjointShardsEqualsTheCombinedText) {
  // The identity the coordinator's /composition rests on: per-node state
  // is independent, so two shard classifiers covering disjoint node sets
  // merge into exactly the text one classifier over all nodes renders.
  const auto pipeline = trained_pipeline();
  core::OnlineClassifier shard0(pipeline), shard1(pipeline),
      combined(pipeline);
  const struct {
    const char* ip;
    core::ApplicationClass cls;
    std::uint64_t seed;
  } nodes[] = {
      {"10.0.0.1", core::ApplicationClass::kCpu, 21},
      {"10.0.1.1", core::ApplicationClass::kIo, 22},
      {"10.0.2.1", core::ApplicationClass::kNetwork, 23},
      {"10.0.3.1", core::ApplicationClass::kMemory, 24},
      {"10.0.4.1", core::ApplicationClass::kIdle, 25},
  };
  for (std::size_t i = 0; i < std::size(nodes); ++i) {
    core::OnlineClassifier& shard = (i % 2 == 0) ? shard0 : shard1;
    feed_node(shard, pipeline, nodes[i].ip, nodes[i].cls, 15,
              nodes[i].seed);
    feed_node(combined, pipeline, nodes[i].ip, nodes[i].cls, 15,
              nodes[i].seed);
  }
  EXPECT_EQ(
      merge_composition_texts({composition_text(shard0),
                               composition_text(shard1)}),
      composition_text(combined));
  // Merge order cannot matter either.
  EXPECT_EQ(
      merge_composition_texts({composition_text(shard1),
                               composition_text(shard0)}),
      composition_text(combined));
}

TEST(DistServing, MergeSumsTheCounters) {
  const auto pipeline = trained_pipeline();
  core::OnlineClassifier a(pipeline), b(pipeline);
  feed_node(a, pipeline, "10.0.0.1", core::ApplicationClass::kCpu, 10, 31);
  feed_node(b, pipeline, "10.0.1.1", core::ApplicationClass::kIo, 7, 32);
  const std::string merged =
      merge_composition_texts({composition_text(a), composition_text(b)});
  const std::size_t expected =
      a.classified_count() + b.classified_count();
  EXPECT_NE(
      merged.find("classified " + std::to_string(expected) + "\n"),
      std::string::npos)
      << merged;
}

TEST(DistServing, MergeRejectsDuplicateNodesAndGarbage) {
  const auto pipeline = trained_pipeline();
  core::OnlineClassifier a(pipeline);
  feed_node(a, pipeline, "10.0.0.1", core::ApplicationClass::kCpu, 10, 41);
  const std::string text = composition_text(a);
  // The same node reported by two shards means the shard map and fleet
  // disagree — merging would double-count, so it must throw.
  EXPECT_THROW(merge_composition_texts({text, text}), std::runtime_error);
  EXPECT_THROW(merge_composition_texts({"not a composition\n"}),
               std::runtime_error);
  EXPECT_THROW(merge_composition_texts({"appclass-composition v1\n"
                                        "classified x\n"
                                        "abstained 0\n"}),
               std::runtime_error);
}

TEST(DistServing, MergeOfEmptyShardsIsAnEmptyComposition) {
  const auto pipeline = trained_pipeline();
  core::OnlineClassifier empty(pipeline);
  EXPECT_EQ(merge_composition_texts(
                {composition_text(empty), composition_text(empty)}),
            composition_text(empty));
}

}  // namespace
}  // namespace appclass::serving
