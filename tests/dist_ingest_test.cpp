// Ingest-listener tests: a real two-process socket loopback proving WAL
// log order == send order, exactly-once resume across a second sender
// process, and the protocol edges (duplicate re-ack, sequence gap,
// off-grid frame) driven by a raw in-process client.
#include "dist/ingest.hpp"

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <mutex>
#include <thread>
#include <vector>

#include "dist/link.hpp"
#include "dist/wire.hpp"
#include "persist/wal.hpp"

namespace appclass::dist {
namespace {

metrics::Snapshot grid_snapshot(std::uint64_t i) {
  metrics::Snapshot s;
  s.time = static_cast<metrics::SimTime>(5 * (i + 1));  // on the 5s grid
  s.node_ip = "10.0." + std::to_string(i % 3) + ".1";
  s.set(metrics::MetricId::kCpuUser, static_cast<double>(i));
  return s;
}

void wait_for(const std::function<bool()>& done) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (!done()) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline) << "timed out";
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

/// Forks a sender process that ships snapshots [first, first+count) over
/// a fresh WorkerLink and exits 0 only after every frame is acked.
void run_sender_process(std::uint16_t port, std::uint64_t first,
                        std::uint64_t count) {
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: no gtest machinery, just send + flush + exit.
    WorkerLink link("127.0.0.1", port);
    for (std::uint64_t i = 0; i < count; ++i)
      if (!link.send(grid_snapshot(first + i), {})) ::_exit(2);
    ::_exit(link.flush() ? 0 : 3);
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  ASSERT_EQ(WEXITSTATUS(status), 0);
}

TEST(DistIngest, TwoProcessLoopbackLogOrderEqualsSendOrder) {
  char tmpl[] = "/tmp/appclass_dist_ingest_XXXXXX";
  ASSERT_NE(::mkdtemp(tmpl), nullptr);
  const std::string dir = tmpl;

  constexpr std::uint64_t kFrames = 40;
  {
    persist::WalWriter wal(dir + "/wal",
                           {.fsync = persist::FsyncPolicy::kAlways}, 0);
    std::mutex wal_mutex;
    IngestListener listener(
        {.port = 0, .sampling_interval_s = 5},
        [&](const metrics::Snapshot& snapshot) {
          const std::lock_guard lock(wal_mutex);
          wal.append(snapshot);
          return true;
        },
        0);
    ASSERT_TRUE(listener.start());

    // First sender: frames 0..kFrames/2. Ack-gated exit means its
    // frames are durable in our WAL before waitpid returns.
    run_sender_process(listener.port(), 0, kFrames / 2);
    EXPECT_EQ(listener.expected(), kFrames / 2);

    // Second sender process — a brand-new link must resume from the
    // hello horizon, not from zero, so numbering continues seamlessly.
    run_sender_process(listener.port(), kFrames / 2, kFrames / 2);
    wait_for([&] { return listener.expected() == kFrames; });
    EXPECT_EQ(listener.connections(), 2u);
    EXPECT_EQ(listener.protocol_errors(), 0u);
    listener.stop();
    wal.sync();
  }

  // The log must hold exactly the send order: seq i carries snapshot i.
  std::vector<persist::WalRecord> records;
  const persist::WalScan scan = persist::replay_wal(
      dir + "/wal", 0,
      [&](const persist::WalRecord& r) { records.push_back(r); });
  EXPECT_FALSE(scan.truncated_tail);
  ASSERT_EQ(records.size(), kFrames);
  for (std::uint64_t i = 0; i < kFrames; ++i) {
    EXPECT_EQ(records[i].seq, i);
    EXPECT_EQ(records[i].snapshot.time, grid_snapshot(i).time);
    EXPECT_EQ(records[i].snapshot.node_ip, grid_snapshot(i).node_ip);
  }
  std::filesystem::remove_all(dir);
}

/// Raw blocking client for protocol-edge tests: speaks the wire format
/// directly so it can violate the contract on purpose.
class RawClient {
 public:
  explicit RawClient(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    connected_ = fd_ >= 0 &&
                 ::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                           sizeof addr) == 0;
  }
  ~RawClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool connected() const { return connected_; }

  bool read_exact(std::uint8_t* out, std::size_t n) {
    std::size_t got = 0;
    while (got < n) {
      const ssize_t r = ::recv(fd_, out + got, n - got, 0);
      if (r <= 0) return false;
      got += static_cast<std::size_t>(r);
    }
    return true;
  }

  bool write_all(const std::vector<std::uint8_t>& bytes) {
    std::size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t r =
          ::send(fd_, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
      if (r <= 0) return false;
      sent += static_cast<std::size_t>(r);
    }
    return true;
  }

  std::optional<Hello> read_hello() {
    std::uint8_t raw[kHelloBytes];
    Hello hello;
    if (!read_exact(raw, kHelloBytes) ||
        decode_hello({raw, kHelloBytes}, hello) != DecodeStatus::kOk)
      return std::nullopt;
    return hello;
  }

  std::optional<std::uint64_t> read_ack() {
    std::uint8_t raw[kAckBytes];
    std::uint64_t seq = 0;
    if (!read_exact(raw, kAckBytes) ||
        decode_ack({raw, kAckBytes}, seq) != DecodeStatus::kOk)
      return std::nullopt;
    return seq;
  }

  /// True when the peer closed the connection (EOF within the timeout).
  bool closed_by_peer() {
    std::uint8_t byte = 0;
    return ::recv(fd_, &byte, 1, 0) == 0;
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
};

TEST(DistIngest, DuplicateFramesAreReackedNotReingested) {
  std::vector<metrics::Snapshot> ingested;
  IngestListener listener(
      {.port = 0, .sampling_interval_s = 5},
      [&](const metrics::Snapshot& snapshot) {
        ingested.push_back(snapshot);
        return true;
      },
      0);
  ASSERT_TRUE(listener.start());

  RawClient client(listener.port());
  ASSERT_TRUE(client.connected());
  const auto hello = client.read_hello();
  ASSERT_TRUE(hello.has_value());
  EXPECT_EQ(hello->wal_next, 0u);

  ASSERT_TRUE(client.write_all(encode_frame(grid_snapshot(0), 0, {})));
  EXPECT_EQ(client.read_ack(), std::optional<std::uint64_t>(0));
  // Retransmit of seq 0 (as after a lost ack): re-acked, not re-ingested.
  ASSERT_TRUE(client.write_all(encode_frame(grid_snapshot(0), 0, {})));
  EXPECT_EQ(client.read_ack(), std::optional<std::uint64_t>(0));
  ASSERT_TRUE(client.write_all(encode_frame(grid_snapshot(1), 1, {})));
  EXPECT_EQ(client.read_ack(), std::optional<std::uint64_t>(1));

  listener.stop();
  EXPECT_EQ(ingested.size(), 2u);
  EXPECT_EQ(listener.duplicates(), 1u);
  EXPECT_EQ(listener.expected(), 2u);
}

TEST(DistIngest, SequenceGapClosesTheConnection) {
  IngestListener listener(
      {.port = 0, .sampling_interval_s = 5},
      [](const metrics::Snapshot&) { return true; }, 0);
  ASSERT_TRUE(listener.start());

  RawClient client(listener.port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.read_hello().has_value());
  // seq 3 while the listener expects 0: unackable, must disconnect.
  ASSERT_TRUE(client.write_all(encode_frame(grid_snapshot(3), 3, {})));
  EXPECT_TRUE(client.closed_by_peer());
  listener.stop();
  EXPECT_EQ(listener.protocol_errors(), 1u);
  EXPECT_EQ(listener.expected(), 0u);
}

TEST(DistIngest, OffGridFrameClosesTheConnection) {
  IngestListener listener(
      {.port = 0, .sampling_interval_s = 5},
      [](const metrics::Snapshot&) { return true; }, 0);
  ASSERT_TRUE(listener.start());

  RawClient client(listener.port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.read_hello().has_value());
  metrics::Snapshot off_grid = grid_snapshot(0);
  off_grid.time = 7;  // violates the coordinator's grid-filter contract
  ASSERT_TRUE(client.write_all(encode_frame(off_grid, 0, {})));
  EXPECT_TRUE(client.closed_by_peer());
  listener.stop();
  EXPECT_EQ(listener.protocol_errors(), 1u);
  EXPECT_EQ(listener.expected(), 0u);
}

TEST(DistIngest, RejectedSinkClosesUnackedForResend) {
  // A backlog-full sink (push returned false) must close the connection
  // without acking or advancing, so the coordinator resends.
  std::size_t calls = 0;
  IngestListener listener(
      {.port = 0, .sampling_interval_s = 5},
      [&](const metrics::Snapshot&) {
        ++calls;
        return false;
      },
      0);
  ASSERT_TRUE(listener.start());

  RawClient client(listener.port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.read_hello().has_value());
  ASSERT_TRUE(client.write_all(encode_frame(grid_snapshot(0), 0, {})));
  EXPECT_TRUE(client.closed_by_peer());
  listener.stop();
  EXPECT_EQ(calls, 1u);
  EXPECT_EQ(listener.expected(), 0u);
}

TEST(DistIngest, HelloAdvertisesTheRecoveredHorizon) {
  // A listener started at a recovered WAL horizon tells the coordinator
  // to resume from there.
  IngestListener listener(
      {.port = 0, .sampling_interval_s = 5},
      [](const metrics::Snapshot&) { return true; }, 17);
  ASSERT_TRUE(listener.start());
  RawClient client(listener.port());
  ASSERT_TRUE(client.connected());
  const auto hello = client.read_hello();
  ASSERT_TRUE(hello.has_value());
  EXPECT_EQ(hello->wal_next, 17u);
  listener.stop();
}

}  // namespace
}  // namespace appclass::dist
