#include "monitor/wire.hpp"

#include <gtest/gtest.h>

#include "linalg/random.hpp"

namespace appclass::monitor {
namespace {

metrics::Snapshot sample_snapshot(std::uint64_t seed = 1) {
  linalg::Rng rng(seed);
  metrics::Snapshot s;
  s.time = 12345;
  s.node_ip = "10.0.0.1";
  for (auto& v : s.values) v = rng.uniform(-1.0e9, 1.0e9);
  return s;
}

TEST(Wire, RoundTripsExactly) {
  const metrics::Snapshot original = sample_snapshot();
  const auto packet = encode_packet(original);
  const auto decoded = decode_packet(packet);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->time, original.time);
  EXPECT_EQ(decoded->node_ip, original.node_ip);
  for (std::size_t i = 0; i < metrics::kMetricCount; ++i)
    EXPECT_DOUBLE_EQ(decoded->values[i], original.values[i]) << i;
}

TEST(Wire, PacketSizeIsExact) {
  const metrics::Snapshot s = sample_snapshot();
  EXPECT_EQ(encode_packet(s).size(), packet_size(s.node_ip.size()));
}

TEST(Wire, SpecialFloatValuesSurvive) {
  metrics::Snapshot s = sample_snapshot();
  s.values[0] = 0.0;
  s.values[1] = -0.0;
  s.values[2] = 1e-300;
  s.values[3] = std::numeric_limits<double>::max();
  const auto decoded = decode_packet(encode_packet(s));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_DOUBLE_EQ(decoded->values[2], 1e-300);
  EXPECT_DOUBLE_EQ(decoded->values[3], std::numeric_limits<double>::max());
}

TEST(Wire, RejectsBadMagic) {
  auto packet = encode_packet(sample_snapshot());
  packet[0] ^= 0xFF;
  EXPECT_FALSE(decode_packet(packet).has_value());
}

TEST(Wire, RejectsWrongVersion) {
  auto packet = encode_packet(sample_snapshot());
  packet[5] ^= 0x01;
  EXPECT_FALSE(decode_packet(packet).has_value());
}

TEST(Wire, RejectsTruncation) {
  const auto packet = encode_packet(sample_snapshot());
  for (const std::size_t cut : {0u, 1u, 9u, 20u}) {
    const std::span<const std::uint8_t> truncated(packet.data(),
                                                  packet.size() - 1 - cut);
    EXPECT_FALSE(decode_packet(truncated).has_value());
  }
}

TEST(Wire, RejectsTrailingGarbage) {
  auto packet = encode_packet(sample_snapshot());
  packet.push_back(0x00);
  EXPECT_FALSE(decode_packet(packet).has_value());
}

TEST(Wire, ChecksumCatchesBodyCorruption) {
  linalg::Rng rng(7);
  int rejected = 0;
  const int trials = 200;
  for (int t = 0; t < trials; ++t) {
    auto packet = encode_packet(
        sample_snapshot(static_cast<std::uint64_t>(100 + t)));
    const std::size_t idx =
        10 + rng.uniform_index(packet.size() - 10);  // corrupt the body
    packet[idx] ^= static_cast<std::uint8_t>(1 + rng.uniform_index(255));
    if (!decode_packet(packet).has_value()) ++rejected;
  }
  EXPECT_EQ(rejected, trials);
}

TEST(Wire, EmptyNodeIpAllowed) {
  metrics::Snapshot s = sample_snapshot();
  s.node_ip.clear();
  const auto decoded = decode_packet(encode_packet(s));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->node_ip.empty());
}

TEST(Wire, RandomBytesRejected) {
  linalg::Rng rng(9);
  for (int t = 0; t < 100; ++t) {
    std::vector<std::uint8_t> junk(1 + rng.uniform_index(400));
    for (auto& b : junk)
      b = static_cast<std::uint8_t>(rng.uniform_index(256));
    EXPECT_FALSE(decode_packet(junk).has_value());
  }
}

}  // namespace
}  // namespace appclass::monitor
