#include "sched/jobmix.hpp"

#include <gtest/gtest.h>

#include <set>

namespace appclass::sched {
namespace {

const std::map<char, core::ApplicationClass> kPaperClasses = {
    {'S', core::ApplicationClass::kCpu},
    {'P', core::ApplicationClass::kIo},
    {'N', core::ApplicationClass::kNetwork}};

TEST(JobMix, PaperMixHasExactlyTenSchedules) {
  const auto schedules = enumerate_schedules({{'S', 3}, {'P', 3}, {'N', 3}},
                                             3, 3);
  EXPECT_EQ(schedules.size(), 10u);
}

TEST(JobMix, SchedulesAreDistinctAndCanonical) {
  const auto schedules = enumerate_schedules({{'S', 3}, {'P', 3}, {'N', 3}},
                                             3, 3);
  std::set<std::string> seen;
  for (const auto& ws : schedules) {
    EXPECT_EQ(ws.schedule, canonicalize(ws.schedule));
    EXPECT_TRUE(seen.insert(to_string(ws.schedule)).second);
    for (const auto& g : ws.schedule) EXPECT_EQ(g.size(), 3u);
  }
}

TEST(JobMix, MultiplicitiesSumToAllAssignments) {
  // 9 jobs (3 indistinct types of 3) onto 3 distinguishable VMs of 3 slots:
  // 9!/(3!*3!*3!) = 1680 type-respecting assignments in total.
  const auto schedules = enumerate_schedules({{'S', 3}, {'P', 3}, {'N', 3}},
                                             3, 3);
  std::uint64_t total = 0;
  for (const auto& ws : schedules) total += ws.multiplicity;
  EXPECT_EQ(total, 1680u);
}

TEST(JobMix, UniformScheduleHasSmallestMultiplicity) {
  // {(SSS),(PPP),(NNN)} arises in only 3! = 6 ways.
  const auto schedules = enumerate_schedules({{'S', 3}, {'P', 3}, {'N', 3}},
                                             3, 3);
  for (const auto& ws : schedules) {
    if (to_string(ws.schedule) == "{(SSS),(PPP),(NNN)}") {
      EXPECT_EQ(ws.multiplicity, 6u);
    }
    EXPECT_GE(ws.multiplicity, 6u);
  }
}

TEST(JobMix, CanonicalizeSortsWithinAndAcrossGroups) {
  const Schedule raw = {"NS P"[0] + std::string("SP"), "NNS", "SPN"};
  Schedule s = {"PSN", "NNS", "SSP"};
  const Schedule c = canonicalize(s);
  // Each group sorted ascending by char, groups sorted descending.
  for (const auto& g : c)
    for (std::size_t i = 0; i + 1 < g.size(); ++i) EXPECT_LE(g[i], g[i + 1]);
  for (std::size_t i = 0; i + 1 < c.size(); ++i) EXPECT_GE(c[i], c[i + 1]);
  (void)raw;
}

TEST(JobMix, CanonicalizeIsIdempotent) {
  Schedule s = {"SPN", "PPN", "SSN"};
  EXPECT_EQ(canonicalize(canonicalize(s)), canonicalize(s));
}

TEST(JobMix, ToStringFormat) {
  const Schedule s = {"NPS", "NPS", "NPS"};
  EXPECT_EQ(to_string(s), "{(NPS),(NPS),(NPS)}");
}

TEST(JobMix, DiversityScoreMaxForAllDistinct) {
  const Schedule spn = canonicalize({"SPN", "SPN", "SPN"});
  const Schedule uniform = canonicalize({"SSS", "PPP", "NNN"});
  EXPECT_EQ(diversity_score(spn, kPaperClasses), 9);
  EXPECT_EQ(diversity_score(uniform, kPaperClasses), 3);
}

TEST(JobMix, DiversityUsesClassesNotCodes) {
  // If two codes map to the same class, mixing them adds no diversity.
  std::map<char, core::ApplicationClass> classes = {
      {'A', core::ApplicationClass::kCpu},
      {'B', core::ApplicationClass::kCpu},
      {'C', core::ApplicationClass::kIo}};
  const Schedule s = canonicalize({"AAB", "ABC", "BCC"});
  EXPECT_EQ(diversity_score(s, classes), 1 + 2 + 2);
}

TEST(JobMix, TwoGroupEnumeration) {
  // 2 types x 2 jobs into 2 groups of 2: {AA|BB} and {AB|AB}.
  const auto schedules = enumerate_schedules({{'A', 2}, {'B', 2}}, 2, 2);
  EXPECT_EQ(schedules.size(), 2u);
  std::uint64_t total = 0;
  for (const auto& ws : schedules) total += ws.multiplicity;
  EXPECT_EQ(total, 6u);  // 4!/(2!2!) = 6 assignments
}

}  // namespace
}  // namespace appclass::sched
