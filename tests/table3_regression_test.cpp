// Calibration guard: every Table-3 row must keep the dominant behaviour
// class group the paper reports. This pins the workload-model calibration
// so refactors of the simulator or classifier cannot silently regress the
// headline reproduction.
#include <gtest/gtest.h>

#include "core/trainer.hpp"
#include "monitor/harness.hpp"
#include "sim/testbed.hpp"
#include "workloads/catalog.hpp"

namespace appclass {
namespace {

using core::ApplicationClass;

const core::ClassificationPipeline& pipeline() {
  static const core::ClassificationPipeline p = core::make_trained_pipeline();
  return p;
}

core::ClassificationResult classify(const std::string& app, double ram_mb,
                                    std::uint64_t seed = 9000) {
  sim::TestbedOptions opts;
  opts.seed = seed;
  opts.vm1_ram_mb = ram_mb;
  opts.four_vms = false;
  sim::Testbed tb = sim::make_testbed(opts);
  monitor::ClusterMonitor mon(*tb.engine);
  const auto id = tb.engine->submit(
      tb.vm1, workloads::make_by_name(app, static_cast<int>(tb.vm4)));
  const auto run = monitor::profile_instance(*tb.engine, mon, id, 5);
  EXPECT_TRUE(run.completed) << app;
  return pipeline().classify(run.pool);
}

TEST(Table3Regression, CpuIntensiveRows) {
  for (const char* app : {"specseis_small", "ch3d", "simplescalar"}) {
    const auto r = classify(app, 256.0);
    EXPECT_EQ(r.application_class, ApplicationClass::kCpu) << app;
    EXPECT_GT(r.composition.fraction(ApplicationClass::kCpu), 0.9) << app;
  }
}

TEST(Table3Regression, SpecseisMediumIsCleanCpuIn256MbVm) {
  const auto r = classify("specseis_medium", 256.0);
  EXPECT_EQ(r.application_class, ApplicationClass::kCpu);
  EXPECT_GT(r.composition.fraction(ApplicationClass::kCpu), 0.98);
}

TEST(Table3Regression, SpecseisMediumSplitsIn32MbVm) {
  const auto r = classify("specseis_medium", 32.0);
  // Paper row B: 42.9% io / 50.4% cpu / 6.5% paging.
  EXPECT_GT(r.composition.fraction(ApplicationClass::kIo), 0.25);
  EXPECT_GT(r.composition.fraction(ApplicationClass::kCpu), 0.40);
  EXPECT_GT(r.composition.fraction(ApplicationClass::kIo) +
                r.composition.fraction(ApplicationClass::kMemory),
            0.30);
}

TEST(Table3Regression, IoIntensiveRows) {
  for (const char* app : {"postmark", "bonnie"}) {
    const auto r = classify(app, 256.0);
    EXPECT_EQ(r.application_class, ApplicationClass::kIo) << app;
    EXPECT_GT(r.composition.fraction(ApplicationClass::kIo), 0.7) << app;
  }
}

TEST(Table3Regression, StreamIsIoAndPagingMix) {
  const auto r = classify("stream", 256.0);
  EXPECT_GT(r.composition.fraction(ApplicationClass::kIo) +
                r.composition.fraction(ApplicationClass::kMemory),
            0.95);
  EXPECT_GT(r.composition.fraction(ApplicationClass::kMemory), 0.05);
}

TEST(Table3Regression, NetworkIntensiveRows) {
  for (const char* app : {"postmark_nfs", "netpipe", "autobench", "sftp"}) {
    const auto r = classify(app, 256.0);
    EXPECT_EQ(r.application_class, ApplicationClass::kNetwork) << app;
    EXPECT_GT(r.composition.fraction(ApplicationClass::kNetwork), 0.75)
        << app;
  }
}

/// Interactive sessions are short and Markov-random: aggregate the class
/// vectors of several independent sessions before asserting shares.
core::ClassComposition aggregate_composition(const std::string& app,
                                             int sessions) {
  std::vector<ApplicationClass> all;
  for (int s = 0; s < sessions; ++s) {
    const auto r = classify(app, 256.0, 9100 + static_cast<std::uint64_t>(s));
    all.insert(all.end(), r.class_vector.begin(), r.class_vector.end());
  }
  return core::ClassComposition(all);
}

TEST(Table3Regression, VmdIsIdleIoNetworkMixture) {
  const auto comp = aggregate_composition("vmd", 4);
  EXPECT_GT(comp.fraction(ApplicationClass::kIdle), 0.15);
  EXPECT_GT(comp.fraction(ApplicationClass::kIo), 0.15);
  EXPECT_GT(comp.fraction(ApplicationClass::kNetwork), 0.08);
  EXPECT_LT(comp.fraction(ApplicationClass::kCpu), 0.15);
}

TEST(Table3Regression, XspimIsIoPlusIdle) {
  const auto comp = aggregate_composition("xspim", 6);
  EXPECT_EQ(comp.dominant(), ApplicationClass::kIo);
  EXPECT_GT(comp.fraction(ApplicationClass::kIo) +
                comp.fraction(ApplicationClass::kIdle),
            0.85);
}

TEST(Table3Regression, PostmarkEnvironmentFlip) {
  EXPECT_EQ(classify("postmark", 256.0).application_class,
            ApplicationClass::kIo);
  EXPECT_EQ(classify("postmark_nfs", 256.0).application_class,
            ApplicationClass::kNetwork);
}

}  // namespace
}  // namespace appclass
