file(REMOVE_RECURSE
  "CMakeFiles/appclass_trace.dir/timeseries.cpp.o"
  "CMakeFiles/appclass_trace.dir/timeseries.cpp.o.d"
  "libappclass_trace.a"
  "libappclass_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/appclass_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
