file(REMOVE_RECURSE
  "libappclass_trace.a"
)
