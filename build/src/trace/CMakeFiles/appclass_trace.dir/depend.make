# Empty dependencies file for appclass_trace.
# This may be replaced when dependencies are built.
