file(REMOVE_RECURSE
  "libappclass_vmplant.a"
)
