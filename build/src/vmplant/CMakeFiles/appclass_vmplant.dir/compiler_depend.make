# Empty compiler generated dependencies file for appclass_vmplant.
# This may be replaced when dependencies are built.
