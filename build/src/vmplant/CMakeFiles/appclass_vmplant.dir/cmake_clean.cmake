file(REMOVE_RECURSE
  "CMakeFiles/appclass_vmplant.dir/dag.cpp.o"
  "CMakeFiles/appclass_vmplant.dir/dag.cpp.o.d"
  "CMakeFiles/appclass_vmplant.dir/plant.cpp.o"
  "CMakeFiles/appclass_vmplant.dir/plant.cpp.o.d"
  "libappclass_vmplant.a"
  "libappclass_vmplant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/appclass_vmplant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
