
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vmplant/dag.cpp" "src/vmplant/CMakeFiles/appclass_vmplant.dir/dag.cpp.o" "gcc" "src/vmplant/CMakeFiles/appclass_vmplant.dir/dag.cpp.o.d"
  "/root/repo/src/vmplant/plant.cpp" "src/vmplant/CMakeFiles/appclass_vmplant.dir/plant.cpp.o" "gcc" "src/vmplant/CMakeFiles/appclass_vmplant.dir/plant.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/appclass_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/appclass_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/appclass_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
