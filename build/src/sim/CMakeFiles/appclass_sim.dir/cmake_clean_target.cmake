file(REMOVE_RECURSE
  "libappclass_sim.a"
)
