
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/engine.cpp" "src/sim/CMakeFiles/appclass_sim.dir/engine.cpp.o" "gcc" "src/sim/CMakeFiles/appclass_sim.dir/engine.cpp.o.d"
  "/root/repo/src/sim/host.cpp" "src/sim/CMakeFiles/appclass_sim.dir/host.cpp.o" "gcc" "src/sim/CMakeFiles/appclass_sim.dir/host.cpp.o.d"
  "/root/repo/src/sim/testbed.cpp" "src/sim/CMakeFiles/appclass_sim.dir/testbed.cpp.o" "gcc" "src/sim/CMakeFiles/appclass_sim.dir/testbed.cpp.o.d"
  "/root/repo/src/sim/vm.cpp" "src/sim/CMakeFiles/appclass_sim.dir/vm.cpp.o" "gcc" "src/sim/CMakeFiles/appclass_sim.dir/vm.cpp.o.d"
  "/root/repo/src/sim/waterfill.cpp" "src/sim/CMakeFiles/appclass_sim.dir/waterfill.cpp.o" "gcc" "src/sim/CMakeFiles/appclass_sim.dir/waterfill.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/linalg/CMakeFiles/appclass_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/appclass_metrics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
