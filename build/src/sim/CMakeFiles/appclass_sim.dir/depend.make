# Empty dependencies file for appclass_sim.
# This may be replaced when dependencies are built.
