file(REMOVE_RECURSE
  "CMakeFiles/appclass_sim.dir/engine.cpp.o"
  "CMakeFiles/appclass_sim.dir/engine.cpp.o.d"
  "CMakeFiles/appclass_sim.dir/host.cpp.o"
  "CMakeFiles/appclass_sim.dir/host.cpp.o.d"
  "CMakeFiles/appclass_sim.dir/testbed.cpp.o"
  "CMakeFiles/appclass_sim.dir/testbed.cpp.o.d"
  "CMakeFiles/appclass_sim.dir/vm.cpp.o"
  "CMakeFiles/appclass_sim.dir/vm.cpp.o.d"
  "CMakeFiles/appclass_sim.dir/waterfill.cpp.o"
  "CMakeFiles/appclass_sim.dir/waterfill.cpp.o.d"
  "libappclass_sim.a"
  "libappclass_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/appclass_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
