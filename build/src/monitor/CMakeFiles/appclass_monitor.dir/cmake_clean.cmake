file(REMOVE_RECURSE
  "CMakeFiles/appclass_monitor.dir/bus.cpp.o"
  "CMakeFiles/appclass_monitor.dir/bus.cpp.o.d"
  "CMakeFiles/appclass_monitor.dir/fault_injection.cpp.o"
  "CMakeFiles/appclass_monitor.dir/fault_injection.cpp.o.d"
  "CMakeFiles/appclass_monitor.dir/gmetad.cpp.o"
  "CMakeFiles/appclass_monitor.dir/gmetad.cpp.o.d"
  "CMakeFiles/appclass_monitor.dir/harness.cpp.o"
  "CMakeFiles/appclass_monitor.dir/harness.cpp.o.d"
  "CMakeFiles/appclass_monitor.dir/profiler.cpp.o"
  "CMakeFiles/appclass_monitor.dir/profiler.cpp.o.d"
  "CMakeFiles/appclass_monitor.dir/wire.cpp.o"
  "CMakeFiles/appclass_monitor.dir/wire.cpp.o.d"
  "libappclass_monitor.a"
  "libappclass_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/appclass_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
