
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/monitor/bus.cpp" "src/monitor/CMakeFiles/appclass_monitor.dir/bus.cpp.o" "gcc" "src/monitor/CMakeFiles/appclass_monitor.dir/bus.cpp.o.d"
  "/root/repo/src/monitor/fault_injection.cpp" "src/monitor/CMakeFiles/appclass_monitor.dir/fault_injection.cpp.o" "gcc" "src/monitor/CMakeFiles/appclass_monitor.dir/fault_injection.cpp.o.d"
  "/root/repo/src/monitor/gmetad.cpp" "src/monitor/CMakeFiles/appclass_monitor.dir/gmetad.cpp.o" "gcc" "src/monitor/CMakeFiles/appclass_monitor.dir/gmetad.cpp.o.d"
  "/root/repo/src/monitor/harness.cpp" "src/monitor/CMakeFiles/appclass_monitor.dir/harness.cpp.o" "gcc" "src/monitor/CMakeFiles/appclass_monitor.dir/harness.cpp.o.d"
  "/root/repo/src/monitor/profiler.cpp" "src/monitor/CMakeFiles/appclass_monitor.dir/profiler.cpp.o" "gcc" "src/monitor/CMakeFiles/appclass_monitor.dir/profiler.cpp.o.d"
  "/root/repo/src/monitor/wire.cpp" "src/monitor/CMakeFiles/appclass_monitor.dir/wire.cpp.o" "gcc" "src/monitor/CMakeFiles/appclass_monitor.dir/wire.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/metrics/CMakeFiles/appclass_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/appclass_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/appclass_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
