file(REMOVE_RECURSE
  "libappclass_monitor.a"
)
