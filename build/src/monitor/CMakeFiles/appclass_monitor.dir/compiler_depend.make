# Empty compiler generated dependencies file for appclass_monitor.
# This may be replaced when dependencies are built.
