# Empty dependencies file for appclass_core.
# This may be replaced when dependencies are built.
