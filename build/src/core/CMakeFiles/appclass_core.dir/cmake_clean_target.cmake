file(REMOVE_RECURSE
  "libappclass_core.a"
)
