
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/appdb.cpp" "src/core/CMakeFiles/appclass_core.dir/appdb.cpp.o" "gcc" "src/core/CMakeFiles/appclass_core.dir/appdb.cpp.o.d"
  "/root/repo/src/core/classifiers.cpp" "src/core/CMakeFiles/appclass_core.dir/classifiers.cpp.o" "gcc" "src/core/CMakeFiles/appclass_core.dir/classifiers.cpp.o.d"
  "/root/repo/src/core/composition.cpp" "src/core/CMakeFiles/appclass_core.dir/composition.cpp.o" "gcc" "src/core/CMakeFiles/appclass_core.dir/composition.cpp.o.d"
  "/root/repo/src/core/cost_model.cpp" "src/core/CMakeFiles/appclass_core.dir/cost_model.cpp.o" "gcc" "src/core/CMakeFiles/appclass_core.dir/cost_model.cpp.o.d"
  "/root/repo/src/core/evaluation.cpp" "src/core/CMakeFiles/appclass_core.dir/evaluation.cpp.o" "gcc" "src/core/CMakeFiles/appclass_core.dir/evaluation.cpp.o.d"
  "/root/repo/src/core/feature_selection.cpp" "src/core/CMakeFiles/appclass_core.dir/feature_selection.cpp.o" "gcc" "src/core/CMakeFiles/appclass_core.dir/feature_selection.cpp.o.d"
  "/root/repo/src/core/incremental.cpp" "src/core/CMakeFiles/appclass_core.dir/incremental.cpp.o" "gcc" "src/core/CMakeFiles/appclass_core.dir/incremental.cpp.o.d"
  "/root/repo/src/core/knn.cpp" "src/core/CMakeFiles/appclass_core.dir/knn.cpp.o" "gcc" "src/core/CMakeFiles/appclass_core.dir/knn.cpp.o.d"
  "/root/repo/src/core/online.cpp" "src/core/CMakeFiles/appclass_core.dir/online.cpp.o" "gcc" "src/core/CMakeFiles/appclass_core.dir/online.cpp.o.d"
  "/root/repo/src/core/pca.cpp" "src/core/CMakeFiles/appclass_core.dir/pca.cpp.o" "gcc" "src/core/CMakeFiles/appclass_core.dir/pca.cpp.o.d"
  "/root/repo/src/core/pipeline.cpp" "src/core/CMakeFiles/appclass_core.dir/pipeline.cpp.o" "gcc" "src/core/CMakeFiles/appclass_core.dir/pipeline.cpp.o.d"
  "/root/repo/src/core/preprocess.cpp" "src/core/CMakeFiles/appclass_core.dir/preprocess.cpp.o" "gcc" "src/core/CMakeFiles/appclass_core.dir/preprocess.cpp.o.d"
  "/root/repo/src/core/serialize.cpp" "src/core/CMakeFiles/appclass_core.dir/serialize.cpp.o" "gcc" "src/core/CMakeFiles/appclass_core.dir/serialize.cpp.o.d"
  "/root/repo/src/core/trainer.cpp" "src/core/CMakeFiles/appclass_core.dir/trainer.cpp.o" "gcc" "src/core/CMakeFiles/appclass_core.dir/trainer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/linalg/CMakeFiles/appclass_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/appclass_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/monitor/CMakeFiles/appclass_monitor.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/appclass_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/appclass_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
