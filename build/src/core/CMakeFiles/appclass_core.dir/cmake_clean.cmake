file(REMOVE_RECURSE
  "CMakeFiles/appclass_core.dir/appdb.cpp.o"
  "CMakeFiles/appclass_core.dir/appdb.cpp.o.d"
  "CMakeFiles/appclass_core.dir/classifiers.cpp.o"
  "CMakeFiles/appclass_core.dir/classifiers.cpp.o.d"
  "CMakeFiles/appclass_core.dir/composition.cpp.o"
  "CMakeFiles/appclass_core.dir/composition.cpp.o.d"
  "CMakeFiles/appclass_core.dir/cost_model.cpp.o"
  "CMakeFiles/appclass_core.dir/cost_model.cpp.o.d"
  "CMakeFiles/appclass_core.dir/evaluation.cpp.o"
  "CMakeFiles/appclass_core.dir/evaluation.cpp.o.d"
  "CMakeFiles/appclass_core.dir/feature_selection.cpp.o"
  "CMakeFiles/appclass_core.dir/feature_selection.cpp.o.d"
  "CMakeFiles/appclass_core.dir/incremental.cpp.o"
  "CMakeFiles/appclass_core.dir/incremental.cpp.o.d"
  "CMakeFiles/appclass_core.dir/knn.cpp.o"
  "CMakeFiles/appclass_core.dir/knn.cpp.o.d"
  "CMakeFiles/appclass_core.dir/online.cpp.o"
  "CMakeFiles/appclass_core.dir/online.cpp.o.d"
  "CMakeFiles/appclass_core.dir/pca.cpp.o"
  "CMakeFiles/appclass_core.dir/pca.cpp.o.d"
  "CMakeFiles/appclass_core.dir/pipeline.cpp.o"
  "CMakeFiles/appclass_core.dir/pipeline.cpp.o.d"
  "CMakeFiles/appclass_core.dir/preprocess.cpp.o"
  "CMakeFiles/appclass_core.dir/preprocess.cpp.o.d"
  "CMakeFiles/appclass_core.dir/serialize.cpp.o"
  "CMakeFiles/appclass_core.dir/serialize.cpp.o.d"
  "CMakeFiles/appclass_core.dir/trainer.cpp.o"
  "CMakeFiles/appclass_core.dir/trainer.cpp.o.d"
  "libappclass_core.a"
  "libappclass_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/appclass_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
