file(REMOVE_RECURSE
  "CMakeFiles/appclass_sched.dir/advisor.cpp.o"
  "CMakeFiles/appclass_sched.dir/advisor.cpp.o.d"
  "CMakeFiles/appclass_sched.dir/experiment.cpp.o"
  "CMakeFiles/appclass_sched.dir/experiment.cpp.o.d"
  "CMakeFiles/appclass_sched.dir/greedy.cpp.o"
  "CMakeFiles/appclass_sched.dir/greedy.cpp.o.d"
  "CMakeFiles/appclass_sched.dir/jobmix.cpp.o"
  "CMakeFiles/appclass_sched.dir/jobmix.cpp.o.d"
  "CMakeFiles/appclass_sched.dir/migration.cpp.o"
  "CMakeFiles/appclass_sched.dir/migration.cpp.o.d"
  "CMakeFiles/appclass_sched.dir/policy.cpp.o"
  "CMakeFiles/appclass_sched.dir/policy.cpp.o.d"
  "CMakeFiles/appclass_sched.dir/queue.cpp.o"
  "CMakeFiles/appclass_sched.dir/queue.cpp.o.d"
  "libappclass_sched.a"
  "libappclass_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/appclass_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
