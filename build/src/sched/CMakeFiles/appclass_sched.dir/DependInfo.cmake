
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/advisor.cpp" "src/sched/CMakeFiles/appclass_sched.dir/advisor.cpp.o" "gcc" "src/sched/CMakeFiles/appclass_sched.dir/advisor.cpp.o.d"
  "/root/repo/src/sched/experiment.cpp" "src/sched/CMakeFiles/appclass_sched.dir/experiment.cpp.o" "gcc" "src/sched/CMakeFiles/appclass_sched.dir/experiment.cpp.o.d"
  "/root/repo/src/sched/greedy.cpp" "src/sched/CMakeFiles/appclass_sched.dir/greedy.cpp.o" "gcc" "src/sched/CMakeFiles/appclass_sched.dir/greedy.cpp.o.d"
  "/root/repo/src/sched/jobmix.cpp" "src/sched/CMakeFiles/appclass_sched.dir/jobmix.cpp.o" "gcc" "src/sched/CMakeFiles/appclass_sched.dir/jobmix.cpp.o.d"
  "/root/repo/src/sched/migration.cpp" "src/sched/CMakeFiles/appclass_sched.dir/migration.cpp.o" "gcc" "src/sched/CMakeFiles/appclass_sched.dir/migration.cpp.o.d"
  "/root/repo/src/sched/policy.cpp" "src/sched/CMakeFiles/appclass_sched.dir/policy.cpp.o" "gcc" "src/sched/CMakeFiles/appclass_sched.dir/policy.cpp.o.d"
  "/root/repo/src/sched/queue.cpp" "src/sched/CMakeFiles/appclass_sched.dir/queue.cpp.o" "gcc" "src/sched/CMakeFiles/appclass_sched.dir/queue.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/appclass_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/appclass_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/appclass_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/monitor/CMakeFiles/appclass_monitor.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/appclass_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/appclass_metrics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
