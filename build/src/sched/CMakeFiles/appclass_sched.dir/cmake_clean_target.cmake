file(REMOVE_RECURSE
  "libappclass_sched.a"
)
