# Empty compiler generated dependencies file for appclass_sched.
# This may be replaced when dependencies are built.
