# Empty dependencies file for appclass_workloads.
# This may be replaced when dependencies are built.
