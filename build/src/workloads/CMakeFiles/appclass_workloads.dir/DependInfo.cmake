
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/apps/autobench.cpp" "src/workloads/CMakeFiles/appclass_workloads.dir/apps/autobench.cpp.o" "gcc" "src/workloads/CMakeFiles/appclass_workloads.dir/apps/autobench.cpp.o.d"
  "/root/repo/src/workloads/apps/bonnie.cpp" "src/workloads/CMakeFiles/appclass_workloads.dir/apps/bonnie.cpp.o" "gcc" "src/workloads/CMakeFiles/appclass_workloads.dir/apps/bonnie.cpp.o.d"
  "/root/repo/src/workloads/apps/ch3d.cpp" "src/workloads/CMakeFiles/appclass_workloads.dir/apps/ch3d.cpp.o" "gcc" "src/workloads/CMakeFiles/appclass_workloads.dir/apps/ch3d.cpp.o.d"
  "/root/repo/src/workloads/apps/ettcp.cpp" "src/workloads/CMakeFiles/appclass_workloads.dir/apps/ettcp.cpp.o" "gcc" "src/workloads/CMakeFiles/appclass_workloads.dir/apps/ettcp.cpp.o.d"
  "/root/repo/src/workloads/apps/idle.cpp" "src/workloads/CMakeFiles/appclass_workloads.dir/apps/idle.cpp.o" "gcc" "src/workloads/CMakeFiles/appclass_workloads.dir/apps/idle.cpp.o.d"
  "/root/repo/src/workloads/apps/netpipe.cpp" "src/workloads/CMakeFiles/appclass_workloads.dir/apps/netpipe.cpp.o" "gcc" "src/workloads/CMakeFiles/appclass_workloads.dir/apps/netpipe.cpp.o.d"
  "/root/repo/src/workloads/apps/pagebench.cpp" "src/workloads/CMakeFiles/appclass_workloads.dir/apps/pagebench.cpp.o" "gcc" "src/workloads/CMakeFiles/appclass_workloads.dir/apps/pagebench.cpp.o.d"
  "/root/repo/src/workloads/apps/postmark.cpp" "src/workloads/CMakeFiles/appclass_workloads.dir/apps/postmark.cpp.o" "gcc" "src/workloads/CMakeFiles/appclass_workloads.dir/apps/postmark.cpp.o.d"
  "/root/repo/src/workloads/apps/sftp.cpp" "src/workloads/CMakeFiles/appclass_workloads.dir/apps/sftp.cpp.o" "gcc" "src/workloads/CMakeFiles/appclass_workloads.dir/apps/sftp.cpp.o.d"
  "/root/repo/src/workloads/apps/simplescalar.cpp" "src/workloads/CMakeFiles/appclass_workloads.dir/apps/simplescalar.cpp.o" "gcc" "src/workloads/CMakeFiles/appclass_workloads.dir/apps/simplescalar.cpp.o.d"
  "/root/repo/src/workloads/apps/specseis.cpp" "src/workloads/CMakeFiles/appclass_workloads.dir/apps/specseis.cpp.o" "gcc" "src/workloads/CMakeFiles/appclass_workloads.dir/apps/specseis.cpp.o.d"
  "/root/repo/src/workloads/apps/stream.cpp" "src/workloads/CMakeFiles/appclass_workloads.dir/apps/stream.cpp.o" "gcc" "src/workloads/CMakeFiles/appclass_workloads.dir/apps/stream.cpp.o.d"
  "/root/repo/src/workloads/apps/vmd.cpp" "src/workloads/CMakeFiles/appclass_workloads.dir/apps/vmd.cpp.o" "gcc" "src/workloads/CMakeFiles/appclass_workloads.dir/apps/vmd.cpp.o.d"
  "/root/repo/src/workloads/apps/xspim.cpp" "src/workloads/CMakeFiles/appclass_workloads.dir/apps/xspim.cpp.o" "gcc" "src/workloads/CMakeFiles/appclass_workloads.dir/apps/xspim.cpp.o.d"
  "/root/repo/src/workloads/catalog.cpp" "src/workloads/CMakeFiles/appclass_workloads.dir/catalog.cpp.o" "gcc" "src/workloads/CMakeFiles/appclass_workloads.dir/catalog.cpp.o.d"
  "/root/repo/src/workloads/interactive_app.cpp" "src/workloads/CMakeFiles/appclass_workloads.dir/interactive_app.cpp.o" "gcc" "src/workloads/CMakeFiles/appclass_workloads.dir/interactive_app.cpp.o.d"
  "/root/repo/src/workloads/phased_app.cpp" "src/workloads/CMakeFiles/appclass_workloads.dir/phased_app.cpp.o" "gcc" "src/workloads/CMakeFiles/appclass_workloads.dir/phased_app.cpp.o.d"
  "/root/repo/src/workloads/trace_replay.cpp" "src/workloads/CMakeFiles/appclass_workloads.dir/trace_replay.cpp.o" "gcc" "src/workloads/CMakeFiles/appclass_workloads.dir/trace_replay.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/appclass_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/appclass_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/appclass_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
