file(REMOVE_RECURSE
  "libappclass_workloads.a"
)
