file(REMOVE_RECURSE
  "CMakeFiles/appclass_linalg.dir/eigen.cpp.o"
  "CMakeFiles/appclass_linalg.dir/eigen.cpp.o.d"
  "CMakeFiles/appclass_linalg.dir/matrix.cpp.o"
  "CMakeFiles/appclass_linalg.dir/matrix.cpp.o.d"
  "CMakeFiles/appclass_linalg.dir/quantile.cpp.o"
  "CMakeFiles/appclass_linalg.dir/quantile.cpp.o.d"
  "CMakeFiles/appclass_linalg.dir/random.cpp.o"
  "CMakeFiles/appclass_linalg.dir/random.cpp.o.d"
  "CMakeFiles/appclass_linalg.dir/stats.cpp.o"
  "CMakeFiles/appclass_linalg.dir/stats.cpp.o.d"
  "libappclass_linalg.a"
  "libappclass_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/appclass_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
