# Empty compiler generated dependencies file for appclass_linalg.
# This may be replaced when dependencies are built.
