file(REMOVE_RECURSE
  "libappclass_linalg.a"
)
