file(REMOVE_RECURSE
  "libappclass_metrics.a"
)
