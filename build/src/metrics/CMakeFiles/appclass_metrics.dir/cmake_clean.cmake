file(REMOVE_RECURSE
  "CMakeFiles/appclass_metrics.dir/schema.cpp.o"
  "CMakeFiles/appclass_metrics.dir/schema.cpp.o.d"
  "CMakeFiles/appclass_metrics.dir/snapshot.cpp.o"
  "CMakeFiles/appclass_metrics.dir/snapshot.cpp.o.d"
  "libappclass_metrics.a"
  "libappclass_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/appclass_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
