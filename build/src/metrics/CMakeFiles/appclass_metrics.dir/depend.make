# Empty dependencies file for appclass_metrics.
# This may be replaced when dependencies are built.
