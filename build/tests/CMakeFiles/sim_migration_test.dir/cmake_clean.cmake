file(REMOVE_RECURSE
  "CMakeFiles/sim_migration_test.dir/sim_migration_test.cpp.o"
  "CMakeFiles/sim_migration_test.dir/sim_migration_test.cpp.o.d"
  "sim_migration_test"
  "sim_migration_test.pdb"
  "sim_migration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_migration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
