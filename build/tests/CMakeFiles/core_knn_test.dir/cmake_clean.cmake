file(REMOVE_RECURSE
  "CMakeFiles/core_knn_test.dir/core_knn_test.cpp.o"
  "CMakeFiles/core_knn_test.dir/core_knn_test.cpp.o.d"
  "core_knn_test"
  "core_knn_test.pdb"
  "core_knn_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_knn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
