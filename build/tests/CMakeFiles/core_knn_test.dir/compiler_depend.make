# Empty compiler generated dependencies file for core_knn_test.
# This may be replaced when dependencies are built.
