# Empty dependencies file for core_novelty_test.
# This may be replaced when dependencies are built.
