file(REMOVE_RECURSE
  "CMakeFiles/core_novelty_test.dir/core_novelty_test.cpp.o"
  "CMakeFiles/core_novelty_test.dir/core_novelty_test.cpp.o.d"
  "core_novelty_test"
  "core_novelty_test.pdb"
  "core_novelty_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_novelty_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
