file(REMOVE_RECURSE
  "CMakeFiles/sim_vm_metrics_test.dir/sim_vm_metrics_test.cpp.o"
  "CMakeFiles/sim_vm_metrics_test.dir/sim_vm_metrics_test.cpp.o.d"
  "sim_vm_metrics_test"
  "sim_vm_metrics_test.pdb"
  "sim_vm_metrics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_vm_metrics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
