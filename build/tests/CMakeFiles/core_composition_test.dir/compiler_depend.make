# Empty compiler generated dependencies file for core_composition_test.
# This may be replaced when dependencies are built.
