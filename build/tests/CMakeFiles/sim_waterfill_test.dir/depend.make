# Empty dependencies file for sim_waterfill_test.
# This may be replaced when dependencies are built.
