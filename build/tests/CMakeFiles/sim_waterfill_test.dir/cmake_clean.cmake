file(REMOVE_RECURSE
  "CMakeFiles/sim_waterfill_test.dir/sim_waterfill_test.cpp.o"
  "CMakeFiles/sim_waterfill_test.dir/sim_waterfill_test.cpp.o.d"
  "sim_waterfill_test"
  "sim_waterfill_test.pdb"
  "sim_waterfill_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_waterfill_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
