file(REMOVE_RECURSE
  "CMakeFiles/core_appdb_test.dir/core_appdb_test.cpp.o"
  "CMakeFiles/core_appdb_test.dir/core_appdb_test.cpp.o.d"
  "core_appdb_test"
  "core_appdb_test.pdb"
  "core_appdb_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_appdb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
