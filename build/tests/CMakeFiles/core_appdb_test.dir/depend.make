# Empty dependencies file for core_appdb_test.
# This may be replaced when dependencies are built.
