# Empty dependencies file for sched_greedy_test.
# This may be replaced when dependencies are built.
