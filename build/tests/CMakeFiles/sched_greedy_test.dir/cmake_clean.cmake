file(REMOVE_RECURSE
  "CMakeFiles/sched_greedy_test.dir/sched_greedy_test.cpp.o"
  "CMakeFiles/sched_greedy_test.dir/sched_greedy_test.cpp.o.d"
  "sched_greedy_test"
  "sched_greedy_test.pdb"
  "sched_greedy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sched_greedy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
