file(REMOVE_RECURSE
  "CMakeFiles/trace_forecast_test.dir/trace_forecast_test.cpp.o"
  "CMakeFiles/trace_forecast_test.dir/trace_forecast_test.cpp.o.d"
  "trace_forecast_test"
  "trace_forecast_test.pdb"
  "trace_forecast_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_forecast_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
