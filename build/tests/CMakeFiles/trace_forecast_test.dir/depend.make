# Empty dependencies file for trace_forecast_test.
# This may be replaced when dependencies are built.
