# Empty compiler generated dependencies file for core_pca_test.
# This may be replaced when dependencies are built.
