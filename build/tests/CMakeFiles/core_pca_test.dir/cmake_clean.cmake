file(REMOVE_RECURSE
  "CMakeFiles/core_pca_test.dir/core_pca_test.cpp.o"
  "CMakeFiles/core_pca_test.dir/core_pca_test.cpp.o.d"
  "core_pca_test"
  "core_pca_test.pdb"
  "core_pca_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_pca_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
