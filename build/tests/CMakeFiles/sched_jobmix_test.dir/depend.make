# Empty dependencies file for sched_jobmix_test.
# This may be replaced when dependencies are built.
