file(REMOVE_RECURSE
  "CMakeFiles/sched_jobmix_test.dir/sched_jobmix_test.cpp.o"
  "CMakeFiles/sched_jobmix_test.dir/sched_jobmix_test.cpp.o.d"
  "sched_jobmix_test"
  "sched_jobmix_test.pdb"
  "sched_jobmix_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sched_jobmix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
