# Empty dependencies file for sched_advisor_test.
# This may be replaced when dependencies are built.
