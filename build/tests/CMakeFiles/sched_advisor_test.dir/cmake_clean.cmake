file(REMOVE_RECURSE
  "CMakeFiles/sched_advisor_test.dir/sched_advisor_test.cpp.o"
  "CMakeFiles/sched_advisor_test.dir/sched_advisor_test.cpp.o.d"
  "sched_advisor_test"
  "sched_advisor_test.pdb"
  "sched_advisor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sched_advisor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
