# Empty dependencies file for table3_regression_test.
# This may be replaced when dependencies are built.
