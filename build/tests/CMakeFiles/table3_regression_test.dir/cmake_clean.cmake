file(REMOVE_RECURSE
  "CMakeFiles/table3_regression_test.dir/table3_regression_test.cpp.o"
  "CMakeFiles/table3_regression_test.dir/table3_regression_test.cpp.o.d"
  "table3_regression_test"
  "table3_regression_test.pdb"
  "table3_regression_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_regression_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
