# Empty dependencies file for monitor_gmetad_test.
# This may be replaced when dependencies are built.
