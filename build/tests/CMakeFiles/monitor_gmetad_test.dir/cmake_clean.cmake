file(REMOVE_RECURSE
  "CMakeFiles/monitor_gmetad_test.dir/monitor_gmetad_test.cpp.o"
  "CMakeFiles/monitor_gmetad_test.dir/monitor_gmetad_test.cpp.o.d"
  "monitor_gmetad_test"
  "monitor_gmetad_test.pdb"
  "monitor_gmetad_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monitor_gmetad_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
