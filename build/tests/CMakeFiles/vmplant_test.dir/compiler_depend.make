# Empty compiler generated dependencies file for vmplant_test.
# This may be replaced when dependencies are built.
