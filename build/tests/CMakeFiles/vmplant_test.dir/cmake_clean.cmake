file(REMOVE_RECURSE
  "CMakeFiles/vmplant_test.dir/vmplant_test.cpp.o"
  "CMakeFiles/vmplant_test.dir/vmplant_test.cpp.o.d"
  "vmplant_test"
  "vmplant_test.pdb"
  "vmplant_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmplant_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
