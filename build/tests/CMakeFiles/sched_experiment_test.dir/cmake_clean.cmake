file(REMOVE_RECURSE
  "CMakeFiles/sched_experiment_test.dir/sched_experiment_test.cpp.o"
  "CMakeFiles/sched_experiment_test.dir/sched_experiment_test.cpp.o.d"
  "sched_experiment_test"
  "sched_experiment_test.pdb"
  "sched_experiment_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sched_experiment_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
