# Empty dependencies file for sched_experiment_test.
# This may be replaced when dependencies are built.
