file(REMOVE_RECURSE
  "CMakeFiles/core_incremental_test.dir/core_incremental_test.cpp.o"
  "CMakeFiles/core_incremental_test.dir/core_incremental_test.cpp.o.d"
  "core_incremental_test"
  "core_incremental_test.pdb"
  "core_incremental_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_incremental_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
