file(REMOVE_RECURSE
  "CMakeFiles/linalg_quantile_test.dir/linalg_quantile_test.cpp.o"
  "CMakeFiles/linalg_quantile_test.dir/linalg_quantile_test.cpp.o.d"
  "linalg_quantile_test"
  "linalg_quantile_test.pdb"
  "linalg_quantile_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linalg_quantile_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
