# Empty compiler generated dependencies file for linalg_quantile_test.
# This may be replaced when dependencies are built.
