file(REMOVE_RECURSE
  "CMakeFiles/monitor_fault_test.dir/monitor_fault_test.cpp.o"
  "CMakeFiles/monitor_fault_test.dir/monitor_fault_test.cpp.o.d"
  "monitor_fault_test"
  "monitor_fault_test.pdb"
  "monitor_fault_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monitor_fault_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
