file(REMOVE_RECURSE
  "CMakeFiles/monitor_wire_test.dir/monitor_wire_test.cpp.o"
  "CMakeFiles/monitor_wire_test.dir/monitor_wire_test.cpp.o.d"
  "monitor_wire_test"
  "monitor_wire_test.pdb"
  "monitor_wire_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monitor_wire_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
