file(REMOVE_RECURSE
  "CMakeFiles/sched_queue_test.dir/sched_queue_test.cpp.o"
  "CMakeFiles/sched_queue_test.dir/sched_queue_test.cpp.o.d"
  "sched_queue_test"
  "sched_queue_test.pdb"
  "sched_queue_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sched_queue_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
