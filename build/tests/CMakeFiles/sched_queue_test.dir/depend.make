# Empty dependencies file for sched_queue_test.
# This may be replaced when dependencies are built.
