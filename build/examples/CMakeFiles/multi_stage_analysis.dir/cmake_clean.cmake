file(REMOVE_RECURSE
  "CMakeFiles/multi_stage_analysis.dir/multi_stage_analysis.cpp.o"
  "CMakeFiles/multi_stage_analysis.dir/multi_stage_analysis.cpp.o.d"
  "multi_stage_analysis"
  "multi_stage_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_stage_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
