# Empty compiler generated dependencies file for multi_stage_analysis.
# This may be replaced when dependencies are built.
