# Empty dependencies file for vmplant_provisioning.
# This may be replaced when dependencies are built.
