file(REMOVE_RECURSE
  "CMakeFiles/vmplant_provisioning.dir/vmplant_provisioning.cpp.o"
  "CMakeFiles/vmplant_provisioning.dir/vmplant_provisioning.cpp.o.d"
  "vmplant_provisioning"
  "vmplant_provisioning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmplant_provisioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
