file(REMOVE_RECURSE
  "CMakeFiles/cost_scheduling.dir/cost_scheduling.cpp.o"
  "CMakeFiles/cost_scheduling.dir/cost_scheduling.cpp.o.d"
  "cost_scheduling"
  "cost_scheduling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cost_scheduling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
