# Empty dependencies file for cost_scheduling.
# This may be replaced when dependencies are built.
