file(REMOVE_RECURSE
  "CMakeFiles/fault_tolerant_monitoring.dir/fault_tolerant_monitoring.cpp.o"
  "CMakeFiles/fault_tolerant_monitoring.dir/fault_tolerant_monitoring.cpp.o.d"
  "fault_tolerant_monitoring"
  "fault_tolerant_monitoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fault_tolerant_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
