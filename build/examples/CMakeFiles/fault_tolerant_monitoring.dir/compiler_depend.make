# Empty compiler generated dependencies file for fault_tolerant_monitoring.
# This may be replaced when dependencies are built.
