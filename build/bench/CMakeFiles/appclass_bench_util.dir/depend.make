# Empty dependencies file for appclass_bench_util.
# This may be replaced when dependencies are built.
