file(REMOVE_RECURSE
  "../lib/libappclass_bench_util.a"
)
