file(REMOVE_RECURSE
  "../lib/libappclass_bench_util.a"
  "../lib/libappclass_bench_util.pdb"
  "CMakeFiles/appclass_bench_util.dir/bench_util.cpp.o"
  "CMakeFiles/appclass_bench_util.dir/bench_util.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/appclass_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
