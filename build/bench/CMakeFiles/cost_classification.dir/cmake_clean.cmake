file(REMOVE_RECURSE
  "CMakeFiles/cost_classification.dir/cost_classification.cpp.o"
  "CMakeFiles/cost_classification.dir/cost_classification.cpp.o.d"
  "cost_classification"
  "cost_classification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cost_classification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
