# Empty dependencies file for cost_classification.
# This may be replaced when dependencies are built.
