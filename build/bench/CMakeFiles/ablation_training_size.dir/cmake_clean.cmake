file(REMOVE_RECURSE
  "CMakeFiles/ablation_training_size.dir/ablation_training_size.cpp.o"
  "CMakeFiles/ablation_training_size.dir/ablation_training_size.cpp.o.d"
  "ablation_training_size"
  "ablation_training_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_training_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
