# Empty dependencies file for ablation_auto_features.
# This may be replaced when dependencies are built.
