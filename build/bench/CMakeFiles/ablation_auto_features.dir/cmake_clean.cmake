file(REMOVE_RECURSE
  "CMakeFiles/ablation_auto_features.dir/ablation_auto_features.cpp.o"
  "CMakeFiles/ablation_auto_features.dir/ablation_auto_features.cpp.o.d"
  "ablation_auto_features"
  "ablation_auto_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_auto_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
