# Empty dependencies file for greedy_scale.
# This may be replaced when dependencies are built.
