file(REMOVE_RECURSE
  "CMakeFiles/greedy_scale.dir/greedy_scale.cpp.o"
  "CMakeFiles/greedy_scale.dir/greedy_scale.cpp.o.d"
  "greedy_scale"
  "greedy_scale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/greedy_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
