# Empty compiler generated dependencies file for migration_stages.
# This may be replaced when dependencies are built.
