file(REMOVE_RECURSE
  "CMakeFiles/migration_stages.dir/migration_stages.cpp.o"
  "CMakeFiles/migration_stages.dir/migration_stages.cpp.o.d"
  "migration_stages"
  "migration_stages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/migration_stages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
