file(REMOVE_RECURSE
  "CMakeFiles/ablation_pca_q.dir/ablation_pca_q.cpp.o"
  "CMakeFiles/ablation_pca_q.dir/ablation_pca_q.cpp.o.d"
  "ablation_pca_q"
  "ablation_pca_q.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_pca_q.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
