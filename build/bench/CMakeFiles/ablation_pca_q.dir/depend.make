# Empty dependencies file for ablation_pca_q.
# This may be replaced when dependencies are built.
