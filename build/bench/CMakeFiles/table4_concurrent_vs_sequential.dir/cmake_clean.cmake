file(REMOVE_RECURSE
  "CMakeFiles/table4_concurrent_vs_sequential.dir/table4_concurrent_vs_sequential.cpp.o"
  "CMakeFiles/table4_concurrent_vs_sequential.dir/table4_concurrent_vs_sequential.cpp.o.d"
  "table4_concurrent_vs_sequential"
  "table4_concurrent_vs_sequential.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_concurrent_vs_sequential.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
