# Empty compiler generated dependencies file for table4_concurrent_vs_sequential.
# This may be replaced when dependencies are built.
