file(REMOVE_RECURSE
  "CMakeFiles/fig3_clustering.dir/fig3_clustering.cpp.o"
  "CMakeFiles/fig3_clustering.dir/fig3_clustering.cpp.o.d"
  "fig3_clustering"
  "fig3_clustering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_clustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
