# Empty compiler generated dependencies file for table3_composition.
# This may be replaced when dependencies are built.
