file(REMOVE_RECURSE
  "CMakeFiles/table3_composition.dir/table3_composition.cpp.o"
  "CMakeFiles/table3_composition.dir/table3_composition.cpp.o.d"
  "table3_composition"
  "table3_composition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_composition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
