file(REMOVE_RECURSE
  "CMakeFiles/fig4_schedule_throughput.dir/fig4_schedule_throughput.cpp.o"
  "CMakeFiles/fig4_schedule_throughput.dir/fig4_schedule_throughput.cpp.o.d"
  "fig4_schedule_throughput"
  "fig4_schedule_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_schedule_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
