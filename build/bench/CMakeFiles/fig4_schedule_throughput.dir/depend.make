# Empty dependencies file for fig4_schedule_throughput.
# This may be replaced when dependencies are built.
