
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_features.cpp" "bench/CMakeFiles/ablation_features.dir/ablation_features.cpp.o" "gcc" "bench/CMakeFiles/ablation_features.dir/ablation_features.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/appclass_bench_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/appclass_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/appclass_core.dir/DependInfo.cmake"
  "/root/repo/build/src/monitor/CMakeFiles/appclass_monitor.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/appclass_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/appclass_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/appclass_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/appclass_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
