# Empty compiler generated dependencies file for queue_policies.
# This may be replaced when dependencies are built.
