file(REMOVE_RECURSE
  "CMakeFiles/queue_policies.dir/queue_policies.cpp.o"
  "CMakeFiles/queue_policies.dir/queue_policies.cpp.o.d"
  "queue_policies"
  "queue_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/queue_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
