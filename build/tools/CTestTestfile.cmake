# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_train "/root/repo/build/tools/appclass_cli" "train" "/root/repo/build/tools/model.txt")
set_tests_properties(cli_train PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_profile "/root/repo/build/tools/appclass_cli" "profile" "postmark" "/root/repo/build/tools/pool.csv")
set_tests_properties(cli_profile PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_classify "/root/repo/build/tools/appclass_cli" "classify" "/root/repo/build/tools/model.txt" "/root/repo/build/tools/pool.csv")
set_tests_properties(cli_classify PROPERTIES  DEPENDS "cli_train;cli_profile" PASS_REGULAR_EXPRESSION "class:       io" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_info "/root/repo/build/tools/appclass_cli" "info" "/root/repo/build/tools/model.txt")
set_tests_properties(cli_info PROPERTIES  DEPENDS "cli_train" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;15;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_apps "/root/repo/build/tools/appclass_cli" "apps")
set_tests_properties(cli_apps PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;17;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_trace_record "/root/repo/build/tools/appclass_cli" "trace-record" "postmark" "/root/repo/build/tools/trace.csv")
set_tests_properties(cli_trace_record PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;18;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_trace_replay "/root/repo/build/tools/appclass_cli" "trace-replay" "/root/repo/build/tools/trace.csv" "/root/repo/build/tools/replay_pool.csv")
set_tests_properties(cli_trace_replay PROPERTIES  DEPENDS "cli_trace_record" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;21;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_bad_usage "/root/repo/build/tools/appclass_cli" "frobnicate")
set_tests_properties(cli_bad_usage PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;25;add_test;/root/repo/tools/CMakeLists.txt;0;")
