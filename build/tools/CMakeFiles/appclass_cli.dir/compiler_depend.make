# Empty compiler generated dependencies file for appclass_cli.
# This may be replaced when dependencies are built.
