file(REMOVE_RECURSE
  "CMakeFiles/appclass_cli.dir/appclass_cli.cpp.o"
  "CMakeFiles/appclass_cli.dir/appclass_cli.cpp.o.d"
  "appclass_cli"
  "appclass_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/appclass_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
